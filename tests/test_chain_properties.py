"""Property-based tests for the chain-replication primitives.

The two pure functions the recovery story stands on are driven directly
by Hypothesis:

- :func:`chain_successors` — successor sets never contain the primary,
  stay inside the live set, and are *ring-stable*: for any live subset
  the result equals the full-ring walk order filtered to the survivors
  and truncated, so membership changes never reorder survivors.
- :func:`merge_chain_copies` — promotion's max-version merge picks, per
  row, the copy with the highest mutation counter, ties breaking to the
  lowest holder index, independent of dict insertion order.

Plus the concrete fencing end of the contract: a write fan-out stamped
with a dead primary's epoch, replayed after promotion re-installed the
copies at the new epoch, is rejected by the apply fence and mutates
nothing.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig
from repro.core.context import PS2Context
from repro.ps import messages
from repro.ps.replication import chain_successors, merge_chain_copies


def _ring_case():
    """(ring_size, primary, m, alive) with alive ⊆ range(ring_size)."""
    return st.integers(min_value=1, max_value=12).flatmap(
        lambda ring: st.tuples(
            st.just(ring),
            st.integers(min_value=0, max_value=ring - 1),
            st.integers(min_value=0, max_value=5),
            st.sets(st.integers(min_value=0, max_value=ring - 1)),
        )
    )


def _full_walk(primary, ring):
    return [(primary + step) % ring for step in range(1, ring)]


# -- chain_successors ---------------------------------------------------------


@given(case=_ring_case())
@settings(max_examples=200, deadline=None)
def test_successors_disjoint_bounded_and_live(case):
    ring, primary, m, alive = case
    out = chain_successors(primary, ring, m, alive)
    assert primary not in out
    assert set(out) <= (alive - {primary})
    assert len(out) == len(set(out))  # no duplicates
    assert len(out) == min(m, len(alive - {primary}))


@given(case=_ring_case())
@settings(max_examples=200, deadline=None)
def test_successors_are_ring_stable(case):
    """The result is always the full-ring walk filtered to the live set
    and truncated — the closed form every other property follows from."""
    ring, primary, m, alive = case
    out = chain_successors(primary, ring, m, alive)
    walk = [s for s in _full_walk(primary, ring) if s in alive]
    assert out == walk[:m]


@given(case=_ring_case(), data=st.data())
@settings(max_examples=200, deadline=None)
def test_successors_stable_under_membership_changes(case, data):
    """Removing or adding one server never reorders the survivors: the
    successor lists restricted to their common members agree."""
    ring, primary, m, alive = case
    out = chain_successors(primary, ring, m, alive)
    flipped = data.draw(st.integers(min_value=0, max_value=ring - 1))
    other = (alive ^ {flipped}) - {primary}
    out_other = chain_successors(primary, ring, m, other)
    common = set(out) & set(out_other)
    assert [s for s in out if s in common] == \
        [s for s in out_other if s in common]


# -- merge_chain_copies -------------------------------------------------------


def _copies():
    """{holder: (rows, counters)} with small int rows and opaque shards."""
    rows_entry = st.dictionaries(
        st.integers(min_value=0, max_value=6),      # row id
        st.integers(min_value=0, max_value=50),     # counter
        max_size=5,
    )
    return st.dictionaries(
        st.integers(min_value=0, max_value=7),      # holder index
        rows_entry,
        min_size=1, max_size=4,
    ).map(lambda raw: {
        holder: ({row: ("shard", holder, row) for row in entry},
                 dict(entry))
        for holder, entry in raw.items()
    })


@given(copies=_copies())
@settings(max_examples=200, deadline=None)
def test_merge_picks_max_version_lowest_holder(copies):
    rows, counters, origin = merge_chain_copies(copies)
    all_rows = {r for entry, _ in copies.values() for r in entry}
    assert set(rows) == set(counters) == set(origin) == all_rows
    for row in all_rows:
        holders = {h: cnt.get(row, 0)
                   for h, (rws, cnt) in copies.items() if row in rws}
        best = max(holders.values())
        winner = min(h for h, c in holders.items() if c == best)
        assert counters[row] == best
        assert origin[row] == winner
        assert rows[row] is copies[winner][0][row]


@given(copies=_copies())
@settings(max_examples=100, deadline=None)
def test_merge_ignores_insertion_order(copies):
    reversed_copies = dict(reversed(list(copies.items())))
    assert merge_chain_copies(copies) == merge_chain_copies(reversed_copies)


# -- fencing: stale fan-outs die at the new epoch -----------------------------


def _chain_ctx():
    return PS2Context(config=ClusterConfig(
        n_executors=2, n_servers=3, seed=5, chain_replicas=1))


def test_stale_fenced_write_rejected_after_promotion():
    """A ReplicatedPushRequest carrying the dead primary's epoch — e.g. a
    fan-out that was in flight when the crash hit — must be fenced out by
    the promoted copy's fresh install epoch, leaving values untouched."""
    ctx = _chain_ctx()
    master = ctx.master
    client = ctx.client_for(ctx.cluster.executors[0])
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    stale_epoch = master.server(0).epoch
    succ = ctx.cluster.chain.successors(0)[0]

    master.servers[0].crash()
    client.push_add(m, 0, np.ones(30))  # retry -> recover -> promotion
    assert ctx.metrics.counters["chain-promotions"] == 1
    assert master.server(0).epoch == stale_epoch + 1

    holder = master.server(succ)
    entry = holder.replica_store[(m, 0)]
    assert entry.install_epoch == stale_epoch + 1
    snapshot = {row: shard.values.copy() for row, shard in entry.rows.items()}
    versions = dict(entry.versions)

    row = next(iter(snapshot))
    inner = messages.PushRequest(succ, m, row, np.full(
        entry.rows[row].values.shape[-1], 99.0))
    stale = messages.ReplicatedPushRequest(
        succ, inner, 0, stale_epoch,
        {(m, row): versions.get((m, row), 0) + 1})
    fenced_before = ctx.metrics.counters.get("replica-fanout-fenced", 0)
    holder._serve_replicated_push(stale)
    assert ctx.metrics.counters["replica-fanout-fenced"] == fenced_before + 1
    assert entry.versions == versions
    for r, values in snapshot.items():
        assert np.array_equal(entry.rows[r].values, values)


def test_current_epoch_fanout_still_applies_after_promotion():
    """Control for the fence test: the same fan-out stamped with the NEW
    epoch is applied — the fence rejects stale epochs, not all traffic."""
    ctx = _chain_ctx()
    master = ctx.master
    client = ctx.client_for(ctx.cluster.executors[0])
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    succ = ctx.cluster.chain.successors(0)[0]
    master.servers[0].crash()
    client.push_add(m, 0, np.ones(30))
    client.push_add(m, 0, np.ones(30))  # fans out at the promoted epoch
    holder = master.server(succ)
    entry = holder.replica_store[(m, 0)]
    assert ctx.cluster.chain.key_lag(m, 0) == 0
    primary = master.server(0)
    for row, shard in entry.rows.items():
        assert np.array_equal(shard.values, primary._store[m][row].values)
