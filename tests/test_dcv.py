"""Unit tests for the DCV abstraction — creation, row ops, column ops."""

import numpy as np
import pytest

from repro.common.errors import (
    DimensionMismatchError,
    NotColocatedError,
    PoolExhaustedError,
)
from repro.core.dcv import DCV


def test_dense_returns_row_zero(ps2):
    w = ps2.dense(10, rows=4, name="w")
    assert w.dim == 10
    assert w.row == 0


def test_dcv_dense_staticmethod(ps2):
    w = DCV.dense(ps2, 8, rows=2)
    assert w.dim == 8


def test_sparse_flag(ps2):
    v = ps2.sparse(8)
    assert v.is_sparse
    assert v.derive().is_sparse


def test_derive_is_colocated(ps2):
    w = ps2.dense(10, rows=4)
    g = w.derive()
    assert w.is_colocated_with(g)
    assert g.row != w.row


def test_duplicate_alias(ps2):
    w = ps2.dense(10, rows=4)
    assert w.is_colocated_with(w.duplicate())


def test_independent_dense_not_colocated(ps2):
    a = ps2.dense(10)
    b = ps2.dense(10)
    assert not a.is_colocated_with(b)


def test_pool_grows_past_preallocation(ps2):
    w = ps2.dense(10, rows=2)
    siblings = [w.derive() for _ in range(5)]
    assert all(w.is_colocated_with(s) for s in siblings)


def test_pool_growth_disabled(ps2):
    w = ps2.dense(10, rows=2, allow_growth=False)
    w.derive()
    with pytest.raises(PoolExhaustedError):
        w.derive()


def test_free_returns_slot(ps2):
    w = ps2.dense(10, rows=2, allow_growth=False)
    g = w.derive()
    g.free()
    w.derive()  # reuses the freed slot


def test_pool_accounting(ps2):
    w = ps2.dense(10, rows=4)
    assert w.pool.allocated_rows == 1
    assert w.pool.free_rows == 3
    w.derive()
    assert w.pool.allocated_rows == 2


# -- row access -------------------------------------------------------------

def test_push_pull_round_trip(ps2):
    w = ps2.dense(15)
    w.push(np.arange(15.0))
    assert np.allclose(w.pull(), np.arange(15.0))


def test_sparse_pull(ps2):
    w = ps2.dense(15)
    w.push(np.arange(15.0))
    assert np.allclose(w.pull(indices=np.array([14, 0, 7])), [14, 0, 7])


def test_add_immediate(ps2):
    w = ps2.dense(10)
    w.add(np.ones(10))
    w.add(np.array([2.0]), indices=np.array([4]))
    got = w.pull()
    assert got[4] == 3.0


def test_add_deferred_in_task(ps2):
    w = ps2.dense(10)
    data = ps2.parallelize(range(8))

    def fn(ctx, iterator):
        n = sum(1 for _ in iterator)
        w.add(np.full(10, float(n)), task_ctx=ctx)
        return [n]

    data.map_partitions_with_context(fn).collect()
    # 4 partitions of 2 records each, all accumulated: 4 * 2.0 = 8.0.
    assert np.all(w.pull() == 8.0)


def test_aggregates(ps2):
    w = ps2.dense(12)
    values = np.zeros(12)
    values[[0, 5, 11]] = [1.0, -2.0, 2.0]
    w.push(values)
    assert w.sum() == pytest.approx(1.0)
    assert w.nnz() == 3
    assert w.norm2() == pytest.approx(3.0)


def test_fill_zero_chainable(ps2):
    w = ps2.dense(10)
    assert w.fill(4.0) is w
    assert np.all(w.pull() == 4.0)
    w.zero()
    assert w.nnz() == 0


def test_randomize(ps2):
    w = ps2.dense(50)
    w.randomize(scale=0.1)
    got = w.pull()
    assert np.any(got != 0)
    assert np.all(np.abs(got) <= 0.1)


def test_dense_init_uniform(ps2):
    w = ps2.dense(50, rows=4, init="uniform", scale=0.2)
    assert np.any(w.pull() != 0)
    assert np.any(w.derive().pull() != 0)  # all pool rows initialized


# -- column access -------------------------------------------------------------

def test_dot_colocated(ps2):
    a = ps2.dense(20)
    b = a.derive()
    a.push(np.arange(20.0))
    b.fill(2.0)
    assert a.dot(b) == pytest.approx(np.arange(20.0).sum() * 2)


def test_dot_against_numpy(ps2):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(33)
    y = rng.standard_normal(33)
    a = ps2.dense(33)
    b = a.derive()
    a.push(x)
    b.push(y)
    assert a.dot(b) == pytest.approx(float(np.dot(x, y)))


def test_iaxpy(ps2):
    a = ps2.dense(10)
    b = a.derive()
    a.fill(1.0)
    b.fill(3.0)
    assert a.iaxpy(b, 0.5) is a
    assert np.allclose(a.pull(), 2.5)


def test_axpy_alias(ps2):
    a = ps2.dense(10)
    b = a.derive().fill(1.0)
    a.axpy(b, 2.0)
    assert np.allclose(a.pull(), 2.0)


def test_copy_into_new_derived(ps2):
    a = ps2.dense(10)
    a.push(np.arange(10.0))
    c = a.copy()
    assert c is not a
    assert a.is_colocated_with(c)
    assert np.allclose(c.pull(), np.arange(10.0))


def test_copy_into_existing(ps2):
    a = ps2.dense(10)
    out = a.derive()
    a.fill(7.0)
    a.copy(out=out)
    assert np.all(out.pull() == 7.0)


@pytest.mark.parametrize("op,expected", [
    ("add_vec", np.arange(10.0) + 3.0),
    ("sub", np.arange(10.0) - 3.0),
    ("mul", np.arange(10.0) * 3.0),
    ("div", np.arange(10.0) / 3.0),
])
def test_binary_ops(ps2, op, expected):
    a = ps2.dense(10, rows=8)
    b = a.derive().fill(3.0)
    a.push(np.arange(10.0))
    out = getattr(a, op)(b)
    assert a.is_colocated_with(out)
    assert np.allclose(out.pull(), expected)


@pytest.mark.parametrize("op,expected", [
    ("iadd", np.arange(10.0) + 2.0),
    ("isub", np.arange(10.0) - 2.0),
    ("imul", np.arange(10.0) * 2.0),
    ("idiv", np.arange(10.0) / 2.0),
])
def test_inplace_binary_ops(ps2, op, expected):
    a = ps2.dense(10, rows=8)
    b = a.derive().fill(2.0)
    a.push(np.arange(10.0))
    assert getattr(a, op)(b) is a
    assert np.allclose(a.pull(), expected)


def test_scale_and_shift(ps2):
    a = ps2.dense(10)
    a.fill(2.0)
    a.scale(3.0)
    assert np.allclose(a.pull(), 6.0)
    a.shift(-1.0)
    assert np.allclose(a.pull(), 5.0)


def test_binary_output_must_be_colocated(ps2):
    a = ps2.dense(10)
    b = a.derive()
    stranger = ps2.dense(10)
    with pytest.raises(NotColocatedError):
        a.add_vec(b, out=stranger)


def test_dimension_mismatch(ps2):
    a = ps2.dense(10)
    b = ps2.dense(12)
    with pytest.raises(DimensionMismatchError):
        a.dot(b)


# -- non-co-located slow path (Figure 4) ---------------------------------------

def test_cross_pool_dot_is_correct_but_pays_realign(ps2):
    a = ps2.dense(30)
    b = ps2.dense(30)
    a.push(np.arange(30.0))
    b.fill(1.0)
    before = ps2.metrics.bytes_for_tag("realign")
    assert a.dot(b) == pytest.approx(np.arange(30.0).sum())
    assert ps2.metrics.bytes_for_tag("realign") > before


def test_colocated_dot_pays_no_realign(ps2):
    a = ps2.dense(30)
    b = a.derive().fill(1.0)
    before = ps2.metrics.bytes_for_tag("realign")
    a.dot(b)
    assert ps2.metrics.bytes_for_tag("realign") == before


def test_cross_pool_temp_slot_is_released(ps2):
    a = ps2.dense(30, rows=2, allow_growth=False)
    b = ps2.dense(30)
    b.fill(1.0)
    a.dot(b)
    a.dot(b)  # would exhaust the 2-row pool if temps leaked
    assert a.pool.free_rows == 1


def test_strict_mode_rejects_cross_pool(make_ps2):
    ps2 = make_ps2(strict_colocation=True)
    a = ps2.dense(10)
    b = ps2.dense(10)
    with pytest.raises(NotColocatedError):
        a.dot(b)


def test_strict_mode_allows_derived(make_ps2):
    ps2 = make_ps2(strict_colocation=True)
    a = ps2.dense(10)
    b = a.derive().fill(1.0)
    a.fill(1.0)
    assert a.dot(b) == pytest.approx(10.0)


def test_realign_copies_values_correctly(ps2):
    src = ps2.dense(25)
    src.push(np.arange(25.0))
    dst = ps2.dense(25)
    ps2.realign(src, dst)
    assert np.allclose(dst.pull(), np.arange(25.0))


# -- zip ------------------------------------------------------------------------

def test_zip_requires_colocation(ps2):
    a = ps2.dense(10)
    with pytest.raises(NotColocatedError):
        a.zip(ps2.dense(10))


def test_zip_mutation_and_fold(ps2):
    w = ps2.dense(12)
    g = w.derive()
    w.fill(1.0)
    g.fill(2.0)

    def kernel(arrays):
        weight, grad = arrays
        weight += grad
        return float(grad.sum())

    result = w.zip(g).map_partitions(kernel)
    assert result.sum() == pytest.approx(24.0)
    assert np.allclose(w.pull(), 3.0)


def test_zip_result_folds(ps2):
    w = ps2.dense(9)
    w.push(np.arange(9.0))
    res = w.zip(w.derive().fill(0.0)).map_partitions(
        lambda arrays: float(arrays[0].max())
    )
    assert res.max() == 8.0
    assert res.min() >= 0.0
    assert len(res.collect()) == 3  # one partial per server


def test_zip_result_ignores_none_partials():
    from repro.core.zipop import ZipResult

    r = ZipResult([None, 2.0, 3.0])
    assert r.sum() == 5.0
    assert r.max() == 3.0


def test_zip_result_empty_max_raises():
    from repro.core.zipop import ZipResult

    with pytest.raises(ValueError):
        ZipResult([None]).max()


def test_materialize_equals_pull(ps2):
    w = ps2.dense(10)
    w.push(np.arange(10.0))
    assert np.allclose(w.materialize(), w.pull())


def test_repr(ps2):
    w = ps2.dense(10, name="myvec")
    assert "myvec" in repr(w)
