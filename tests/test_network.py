"""Unit tests for the NIC-serialized network model."""

import pytest

from repro.cluster.metrics import MetricsRegistry
from repro.cluster.network import NetworkModel
from repro.cluster.simclock import SimClock
from repro.common.errors import UnknownNodeError
from repro.common.sizeof import MESSAGE_OVERHEAD_BYTES


@pytest.fixture
def net():
    clock = SimClock()
    metrics = MetricsRegistry()
    model = NetworkModel(clock, metrics, latency=1e-3, default_bandwidth=1e6)
    for node in ("a", "b", "c"):
        clock.register(node)
        model.register(node)
    return model


def test_transfer_time_is_latency_plus_bytes(net):
    nbytes = 1000 - MESSAGE_OVERHEAD_BYTES
    done = net.transfer("a", "b", nbytes)
    # send 1ms + latency 1ms + receive 1ms
    assert done == pytest.approx(0.003)


def test_deliver_advances_receiver_clock(net):
    done = net.transfer("a", "b", 0)
    assert net.clock.now("b") == pytest.approx(done)


def test_no_deliver_leaves_receiver_clock(net):
    net.transfer("a", "b", 10**6, deliver=False)
    assert net.clock.now("b") == 0.0


def test_self_transfer_is_free(net):
    done = net.transfer("a", "a", 10**9)
    assert done == 0.0
    assert net.metrics.total_messages() == 1


def test_incast_serializes_at_receiver(net):
    """Two senders to one receiver: the receiver NIC is the bottleneck."""
    nbytes = 10**6 - MESSAGE_OVERHEAD_BYTES  # 1 second on the wire
    first = net.transfer("a", "c", nbytes, deliver=False)
    second = net.transfer("b", "c", nbytes, deliver=False)
    # Both arrive at c around t=2.001; receives serialize: ~2s and ~3s.
    assert second >= first + 0.9


def test_sender_nic_serializes_fanout(net):
    nbytes = 10**6 - MESSAGE_OVERHEAD_BYTES
    net.transfer("a", "b", nbytes, deliver=False)
    done = net.transfer("a", "c", nbytes, deliver=False)
    # Second send departs only after the first finished sending (~1s).
    assert done >= 2.0


def test_depart_at_overrides_sender_clock(net):
    net.clock.advance("a", 5.0)
    done = net.transfer("a", "b", 0, depart_at=0.0, deliver=False)
    assert done < 1.0


def test_unknown_node_raises(net):
    with pytest.raises(UnknownNodeError):
        net.transfer("a", "zzz", 10)


def test_metrics_account_envelope(net):
    net.transfer("a", "b", 100, tag="t")
    assert net.metrics.bytes_for_tag("t") == 100 + MESSAGE_OVERHEAD_BYTES


def test_logical_message_accounting(net):
    net.transfer("a", "b", 100, tag="t", messages=3)
    net.transfer("a", "b", 100, tag="t")
    assert net.metrics.messages_by_tag["t"] == 2
    assert net.metrics.logical_messages_by_tag["t"] == 4


def test_per_node_bandwidth():
    clock = SimClock()
    model = NetworkModel(clock, MetricsRegistry(), latency=0.0,
                         default_bandwidth=1e6)
    clock.register("slow")
    clock.register("fast")
    model.register("slow", bandwidth=1e3)
    model.register("fast", bandwidth=1e9)
    assert model.bandwidth_of("slow") == 1e3
    nbytes = 1000 - MESSAGE_OVERHEAD_BYTES
    done = model.transfer("fast", "slow", nbytes, deliver=False)
    assert done == pytest.approx(1000 / 1e9 + 1.0)


def test_reset_clears_nic_queues(net):
    net.transfer("a", "b", 10**6)
    net.reset()
    send_busy, recv_busy = net.nic_utilization("a")
    assert send_busy == 0.0 and recv_busy == 0.0


def test_utilization_tracking(net):
    net.transfer("a", "b", 10**6 - MESSAGE_OVERHEAD_BYTES)
    send_busy, _ = net.nic_utilization("a")
    _, recv_busy = net.nic_utilization("b")
    assert send_busy == pytest.approx(1.0)
    assert recv_busy == pytest.approx(1.0)
