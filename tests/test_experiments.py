"""Tests for the experiment harness: Table 3 registry and reporting."""

from repro.experiments import (
    SUPPORT_MATRIX,
    TRAINER_INDEX,
    WORKLOADS,
    curve_summary,
    format_seconds,
    format_speedup,
    format_table,
    make_context,
    support_rows,
    supports,
)
from repro.ml.results import TrainResult


def test_support_matrix_matches_paper_table3():
    # Spot-check every row against the paper's check marks.
    assert supports("PS2", "DeepWalk")
    assert not supports("Spark MLlib", "DeepWalk")
    assert supports("Spark MLlib", "GBDT")
    assert not supports("Glint", "LR")
    assert supports("Glint", "LDA")
    assert supports("XGboost", "GBDT")
    assert not supports("XGboost", "LDA")
    assert not supports("Petuum", "GBDT")
    assert supports("DistML", "LR")
    assert all(supports("PS2", w) for w in WORKLOADS)


def test_only_ps2_covers_everything():
    full = [s for s, row in SUPPORT_MATRIX.items() if all(row.values())]
    assert full == ["PS2"]


def test_every_supported_cell_has_a_trainer():
    for system, row in support_rows():
        for workload, supported in row.items():
            if supported:
                assert (system, workload) in TRAINER_INDEX


def test_trainer_index_paths_resolve():
    import importlib

    for target in TRAINER_INDEX.values():
        module_path, attr = target.split(" ")[0].rsplit(".", 1)
        module = importlib.import_module(module_path)
        assert hasattr(module, attr)


def test_make_context_shapes():
    ctx = make_context(n_executors=3, n_servers=5, seed=9)
    assert len(ctx.cluster.executors) == 3
    assert len(ctx.cluster.servers) == 5


def test_make_context_failure_prob():
    ctx = make_context(task_failure_prob=0.5)
    assert ctx.cluster.failures.task_failure_prob == 0.5


# -- report formatting -------------------------------------------------------------

def test_format_table_aligns():
    out = format_table(["sys", "time"], [("PS2", "1s"), ("MLlibXX", "20s")])
    lines = out.splitlines()
    assert len({len(line) for line in lines if line.strip()}) <= 2
    assert "PS2" in out and "MLlibXX" in out


def test_format_table_title():
    out = format_table(["a"], [("x",)], title="My Table")
    assert out.startswith("My Table")


def test_format_speedup():
    assert format_speedup(3.456) == "3.46x"
    assert format_speedup(None) == "n/a"


def test_format_seconds_ranges():
    assert format_seconds(None) == "n/a"
    assert format_seconds(250.0) == "250 s"
    assert format_seconds(2.5) == "2.50 s"
    assert format_seconds(0.003) == "0.0030 s"


def test_curve_summary():
    r = TrainResult(system="s", workload="w")
    assert curve_summary(r) == "(no history)"
    for i in range(10):
        r.record(i, 1.0 / (i + 1))
    text = curve_summary(r, points=4)
    assert text.count("(") == 4
    assert "0.1000" in text  # the final point is always included
