"""Observability tests: spans, histograms, hot shards, exporters.

The load-bearing property throughout is that observability is *passive*:
tracing and metrics only read the virtual clocks, so a traced run and an
untraced run of the same workload produce byte-identical results.
"""

import json

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.core.context import PS2Context
from repro.cluster.metrics import MetricsRegistry
from repro.obs import (
    StreamingHistogram,
    render_report,
    to_chrome_trace,
    trace_events,
    write_chrome_trace,
)
from repro.obs.tracer import _NULL_SPAN
from repro.ps.client import PSClient
from repro.ps.master import PSMaster


# -- tracer: nesting and ordering under the virtual clock --------------------


def test_span_nesting_on_one_node(cluster):
    tracer = cluster.tracer
    tracer.enable()
    node = cluster.executors[0]
    with tracer.span(node, "outer", cat="task") as outer:
        cluster.charge_seconds(node, 1.0)
        with tracer.span(node, "inner") as inner:
            cluster.charge_seconds(node, 2.0)
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert tracer.children_of(outer) == [inner]
    # inner closed first, so it is recorded first
    assert [s.op for s in tracer.spans] == ["inner", "outer"]
    # virtual-time containment: parent interval covers the child's
    assert outer.start <= inner.start <= inner.end <= outer.end
    assert inner.duration == pytest.approx(2.0)
    assert outer.duration == pytest.approx(3.0)


def test_spans_on_different_nodes_do_not_nest(cluster):
    tracer = cluster.tracer
    tracer.enable()
    with tracer.span(cluster.executors[0], "a"):
        with tracer.span(cluster.executors[1], "b") as other:
            assert other.parent_id is None


def test_record_parents_to_open_span(cluster):
    tracer = cluster.tracer
    tracer.enable()
    node = cluster.executors[0]
    with tracer.span(node, "op") as op:
        recorded = tracer.record(node, "nic", 0.25, 0.75, cat="nic-send")
    assert recorded.parent_id == op.span_id
    assert recorded.duration == pytest.approx(0.5)


def test_ps_op_spans_nest_rpc_children(cluster):
    """A pull produces an op span whose children are its NIC bookings."""
    cluster.tracer.enable()
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    m = master.create_matrix(20, n_rows=2)
    client.push_assign(m, 0, np.arange(20.0))
    cluster.tracer.clear()
    client.pull_row(m, 0)
    pulls = cluster.tracer.spans_for(cat="op", op="pull")
    assert len(pulls) == 1
    pull = pulls[0]
    assert pull.args["matrix_id"] == m
    # one RPC per owning server, bytes accumulated by _request
    assert pull.args["fanout"] == cluster.config.n_servers
    assert pull.args["bytes"] > 0
    children = cluster.tracer.children_of(pull)
    assert any(s.cat == "nic-send" for s in children)
    # server CPU slots landed on the server nodes, not under the client op
    cpu = cluster.tracer.spans_for(cat="cpu")
    assert cpu and all(s.node.startswith("server-") for s in cpu)


def test_disabled_tracer_records_nothing(cluster):
    tracer = cluster.tracer
    assert not tracer.enabled
    node = cluster.executors[0]
    # the no-op context manager is a shared singleton: no allocation
    assert tracer.span(node, "x") is _NULL_SPAN
    assert tracer.span(node, "y", cat="task") is _NULL_SPAN
    with tracer.span(node, "z"):
        pass
    assert tracer.record(node, "r", 0.0, 1.0) is None
    assert len(tracer) == 0
    assert tracer.current(node) is None


def test_record_with_explicit_parent_inherits_trace(cluster):
    """An explicit cross-node parent wins over the stack and passes on its
    trace id, even after the parent span has closed."""
    tracer = cluster.tracer
    tracer.enable()
    a, b = cluster.executors[0], cluster.executors[1]
    with tracer.span(a, "root") as root:
        pass
    child = tracer.record(b, "remote", 1.0, 2.0, cat="cpu",
                          parent_id=root.span_id)
    assert child.parent_id == root.span_id
    assert root.trace_id == root.span_id  # roots start their own trace
    assert child.trace_id == root.span_id
    grand = tracer.record(a, "deeper", 2.0, 3.0, parent_id=child.span_id)
    assert grand.trace_id == root.span_id


def test_record_explicit_parent_beats_open_stack(cluster):
    tracer = cluster.tracer
    tracer.enable()
    node = cluster.executors[0]
    with tracer.span(node, "noise"):
        with tracer.span(cluster.executors[1], "real") as real:
            foreign = tracer.record(node, "x", 0.0, 1.0,
                                    parent_id=real.span_id)
    assert foreign.parent_id == real.span_id
    assert foreign.trace_id == real.trace_id
    # an unknown explicit parent starts a fresh trace instead of crashing
    orphan = tracer.record(node, "y", 0.0, 1.0, parent_id=10**9)
    assert orphan.parent_id == 10**9
    assert orphan.trace_id == orphan.span_id


def test_current_enriches_the_open_span(cluster):
    tracer = cluster.tracer
    tracer.enable()
    node = cluster.executors[0]
    with tracer.span(node, "op") as sp:
        open_span = tracer.current(node)
        assert open_span is sp
        open_span.args["bytes"] = open_span.args.get("bytes", 0) + 123
    assert tracer.spans[-1].args["bytes"] == 123
    assert tracer.current(node) is None


def test_children_of_returns_recording_order_across_nodes(cluster):
    tracer = cluster.tracer
    tracer.enable()
    a, b = cluster.executors[0], cluster.executors[1]
    with tracer.span(a, "parent") as parent:
        pass
    first = tracer.record(b, "c1", 0.0, 1.0, parent_id=parent.span_id)
    second = tracer.record(a, "c2", 0.5, 0.8, parent_id=parent.span_id)
    third = tracer.record(b, "c3", 0.2, 0.4, parent_id=parent.span_id)
    # recording order, not per-node or chronological order
    assert tracer.children_of(parent) == [first, second, third]


# -- cross-node trace context -------------------------------------------------


def test_trace_ctx_links_server_work_to_client_op(cluster):
    """Server CPU slots and NIC bookings share the client op's trace id."""
    cluster.tracer.enable()
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    m = master.create_matrix(20, n_rows=2)
    client.push_assign(m, 0, np.arange(20.0))
    cluster.tracer.clear()
    client.pull_row(m, 0)
    pull = cluster.tracer.spans_for(cat="op", op="pull")[0]
    assert pull.trace_id == pull.span_id
    related = cluster.tracer.spans_for(trace_id=pull.trace_id)
    assert {s.cat for s in related} >= {"op", "cpu", "nic-send", "nic-recv"}
    cpu = [s for s in related if s.cat == "cpu"]
    assert cpu and all(s.parent_id == pull.span_id for s in cpu)
    assert all(s.node.startswith("server-") for s in cpu)
    # no span outside this pull claims its trace
    others = [s for s in cluster.tracer.spans
              if s.trace_id != pull.trace_id]
    assert all(s.cat not in ("cpu",) for s in others)


def test_trace_ctx_never_costs_wire_bytes():
    """Stamping a trace context onto a message changes no byte formula."""
    from repro.ps import messages

    plain = messages.PullRowRequest(0, 1, row=0, n_values=64)
    stamped = messages.PullRowRequest(0, 1, row=0, n_values=64)
    stamped.trace_ctx = (17, 23)
    assert stamped.wire_bytes() == plain.wire_bytes()
    assert stamped.response_bytes() == plain.response_bytes()

    inner = [messages.PullRowRequest(0, 1, row=r, n_values=8)
             for r in range(3)]
    batch = messages.BatchRequest(list(inner))
    before = (batch.wire_bytes(), batch.response_bytes())
    batch.trace_ctx = (17, 23)
    for request in inner:
        request.trace_ctx = (17, 23)
    assert (batch.wire_bytes(), batch.response_bytes()) == before


# -- histogram: percentiles vs numpy ----------------------------------------


def test_histogram_percentiles_match_numpy():
    rng = np.random.default_rng(7)
    values = rng.lognormal(mean=-7.0, sigma=1.5, size=5000)
    hist = StreamingHistogram()
    for v in values:
        hist.record(v)
    for q in (50, 90, 95, 99):
        exact = np.percentile(values, q)
        approx = hist.percentile(q)
        # log-bucketed at 2% growth: within ~2% after midpoint clamping
        assert abs(approx - exact) / exact < 0.02
    assert hist.count == values.size
    assert hist.min == pytest.approx(values.min())
    assert hist.max == pytest.approx(values.max())
    assert hist.mean == pytest.approx(values.mean())


def test_histogram_single_value_is_exact():
    hist = StreamingHistogram()
    hist.record(5.0)
    for q in (0, 50, 100):
        assert hist.percentile(q) == 5.0


def test_histogram_tails_clamped_to_observed_range():
    hist = StreamingHistogram()
    for v in (1.0, 2.0, 3.0, 4.0):
        hist.record(v)
    assert hist.min <= hist.percentile(0) <= hist.max
    assert hist.percentile(100) <= hist.max
    assert hist.percentile(0) == pytest.approx(1.0, rel=0.02)
    assert hist.percentile(100) == pytest.approx(4.0, rel=0.02)


def test_histogram_underflow_bucket():
    hist = StreamingHistogram()
    hist.record(0.0, n=3)
    assert hist.count == 3
    assert hist.percentile(50) == 0.0


def test_histogram_merge():
    a, b = StreamingHistogram(), StreamingHistogram()
    for v in (0.1, 0.2):
        a.record(v)
    for v in (0.3, 0.4):
        b.record(v)
    a.merge(b)
    assert a.count == 4
    assert a.max == 0.4
    with pytest.raises(ValueError):
        a.merge(StreamingHistogram(growth=1.5))


def test_histogram_rejects_bad_args():
    with pytest.raises(ValueError):
        StreamingHistogram(growth=1.0)
    with pytest.raises(ValueError):
        StreamingHistogram().percentile(101)


# -- hot shards --------------------------------------------------------------


def test_hot_shard_detection_on_skewed_access():
    m = MetricsRegistry()
    # shard 0 takes 10x the traffic of the other three
    m.record_shard_access(7, 0, n_values=1000, n_requests=100)
    for shard in (1, 2, 3):
        m.record_shard_access(7, shard, n_values=100, n_requests=10)
    hot = m.hot_shards(factor=2.0)
    assert [(mat, shard) for mat, shard, _, _, _ in hot] == [(7, 0)]
    _mat, _shard, requests, values, ratio = hot[0]
    assert requests == 100 and values == 1000
    # mean requests = (100 + 30) / 4 = 32.5 -> ratio ~3.08
    assert ratio == pytest.approx(100 / 32.5)


def test_hot_shards_empty_on_uniform_access():
    m = MetricsRegistry()
    for shard in range(4):
        m.record_shard_access(1, shard, n_values=50, n_requests=5)
    assert m.hot_shards(factor=1.5) == []


# -- passivity: tracing never changes simulation results ---------------------


def _exercise(ctx):
    w = ctx.dense(512, rows=2)
    g = w.derive().fill(0.5)
    w.push(np.arange(512.0))
    pulled = w.pull()
    dot = w.dot(g)
    return pulled, dot, ctx.elapsed()


def test_traced_run_is_byte_identical_to_untraced():
    plain = PS2Context(config=ClusterConfig(n_executors=4, n_servers=3,
                                            seed=11))
    traced = PS2Context(config=ClusterConfig(n_executors=4, n_servers=3,
                                             seed=11))
    traced.cluster.tracer.enable()
    pulled_a, dot_a, elapsed_a = _exercise(plain)
    pulled_b, dot_b, elapsed_b = _exercise(traced)
    assert np.array_equal(pulled_a, pulled_b)  # byte-identical values
    assert dot_a == dot_b
    assert elapsed_a == elapsed_b  # identical virtual timelines
    assert (plain.cluster.metrics.snapshot()
            == traced.cluster.metrics.snapshot())
    assert len(plain.cluster.tracer) == 0
    assert len(traced.cluster.tracer) > 0


# -- routing invalidation on server recovery ---------------------------------


def test_recovery_invalidates_routing_cache(cluster):
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    m = master.create_matrix(20, n_rows=2)
    client.push_assign(m, 0, np.arange(20.0))
    assert cluster.metrics.messages_by_tag["routing:req"] == 1
    master.checkpoint_all()
    master.server(1).crash()
    got = client.pull_row(m, 0)  # transparent recovery + retry
    assert np.allclose(got, np.arange(20.0))
    assert cluster.metrics.counters["routing-invalidations"] == 1
    assert cluster.metrics.counters["server-recoveries"] == 1
    # the retry re-resolved routing through the master: a second routing RPC
    assert cluster.metrics.messages_by_tag["routing:req"] == 2
    # and the cache is warm again afterwards
    client.pull_row(m, 0)
    assert cluster.metrics.messages_by_tag["routing:req"] == 2


def test_invalidate_all_clears_every_entry(cluster):
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    a = master.create_matrix(10, n_rows=1)
    b = master.create_matrix(10, n_rows=1)
    client.fill_row(a, 0, 1.0)
    client.fill_row(b, 0, 1.0)
    assert cluster.metrics.messages_by_tag["routing:req"] == 2
    client.invalidate()
    client.fill_row(a, 0, 2.0)
    client.fill_row(b, 0, 2.0)
    assert cluster.metrics.messages_by_tag["routing:req"] == 4


# -- exporters ---------------------------------------------------------------


def _traced_context():
    ctx = PS2Context(config=ClusterConfig(n_executors=4, n_servers=3,
                                          seed=3))
    ctx.cluster.tracer.enable()
    _exercise(ctx)
    return ctx


def test_chrome_trace_schema():
    ctx = _traced_context()
    document = to_chrome_trace(ctx.cluster.tracer)
    assert set(document) == {"traceEvents", "displayTimeUnit", "otherData"}
    events = document["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert len(complete) == len(ctx.cluster.tracer)
    assert metadata  # process/thread naming present
    for event in complete:
        assert isinstance(event["name"], str)
        assert isinstance(event["ts"], float)
        assert isinstance(event["dur"], float)
        assert event["dur"] >= 0.0
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert event["args"]["node"]
    # ts/dur are virtual microseconds
    spans = ctx.cluster.tracer.spans
    total_virtual = max(s.end for s in spans) * 1e6
    assert max(e["ts"] + e["dur"] for e in complete) == \
        pytest.approx(total_virtual)


def test_chrome_trace_merges_multiple_tracers():
    a, b = _traced_context(), _traced_context()
    document = to_chrome_trace([("left", a.cluster.tracer),
                                ("right", b.cluster.tracer)])
    meta = [e for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"]
    left = {e["pid"] for e in meta if e["args"]["name"].startswith("left/")}
    right = {e["pid"] for e in meta if e["args"]["name"].startswith("right/")}
    # the two contexts land in disjoint pid blocks with prefixed names
    assert left and right
    assert not left & right


def test_write_chrome_trace_round_trips(tmp_path):
    ctx = _traced_context()
    path = write_chrome_trace(ctx.cluster.tracer,
                              str(tmp_path / "trace.json"))
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    assert document["traceEvents"]
    assert document["otherData"]["clock"] == "virtual"


def test_trace_events_offsets_pids():
    ctx = _traced_context()
    base = trace_events(ctx.cluster.tracer)
    shifted = trace_events(ctx.cluster.tracer, pid_offset=100)
    assert {e["pid"] for e in shifted} == \
        {e["pid"] + 100 for e in base}


def test_report_sections():
    ctx = _traced_context()
    report = render_report(ctx.cluster, title="unit")
    assert "== unit ==" in report
    assert "per-op latency" in report
    assert "p50_s" in report and "p99_s" in report
    assert "per-server load" in report
    assert "server-0" in report
    assert "hot shards" in report
    assert "load imbalance" in report
    assert "spans recorded" in report


def test_report_without_tracing():
    ctx = PS2Context(config=ClusterConfig(n_executors=2, n_servers=2,
                                          seed=3))
    _exercise(ctx)
    report = render_report(ctx.cluster)
    assert "per-op latency" in report
    assert "spans recorded" not in report
