"""Data-generator tests: shapes, determinism, catalog, libsvm round trip."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError, ReproError
from repro.data import (
    CATALOG,
    dataset,
    dense_tabular,
    preferential_attachment_graph,
    random_walks,
    skipgram_pairs,
    sparse_classification,
    spec,
    synthetic_corpus,
)
from repro.data.libsvm import dumps_row, loads_row, read_libsvm, write_libsvm
from repro.data.text import corpus_stats
from repro.linalg.sparse import SparseRow


def test_sparse_classification_shapes():
    rows, true_w = sparse_classification(50, 200, 8, seed=1)
    assert len(rows) == 50
    assert true_w.shape == (200,)
    for row in rows:
        assert row.nnz <= 8
        assert row.indices.max() < 200
        assert row.label in (0.0, 1.0)
        assert np.all(np.diff(row.indices) > 0)  # sorted unique


def test_sparse_classification_deterministic():
    a, _ = sparse_classification(20, 100, 5, seed=7)
    b, _ = sparse_classification(20, 100, 5, seed=7)
    for ra, rb in zip(a, b):
        assert np.array_equal(ra.indices, rb.indices)
        assert np.array_equal(ra.values, rb.values)
        assert ra.label == rb.label


def test_sparse_classification_seed_changes_data():
    a, _ = sparse_classification(20, 100, 5, seed=7)
    b, _ = sparse_classification(20, 100, 5, seed=8)
    assert any(
        not np.array_equal(ra.indices, rb.indices) for ra, rb in zip(a, b)
    )


def test_sparse_classification_rejects_impossible_nnz():
    with pytest.raises(ConfigError):
        sparse_classification(10, 5, 6)


def test_sparse_classification_is_learnable():
    rows, true_w = sparse_classification(300, 100, 10, seed=2, noise=0.0)
    correct = sum(
        (row.dot_dense(true_w) > 0) == (row.label > 0.5) for row in rows
    )
    assert correct / len(rows) > 0.7


def test_dense_tabular_shapes_and_labels():
    X, y = dense_tabular(40, 6, seed=3)
    assert X.shape == (40, 6)
    assert y.shape == (40,)
    assert set(np.unique(y)) <= {0.0, 1.0}


def test_dense_tabular_deterministic():
    a = dense_tabular(20, 4, seed=5)
    b = dense_tabular(20, 4, seed=5)
    assert np.array_equal(a[0], b[0])
    assert np.array_equal(a[1], b[1])


# -- graphs --------------------------------------------------------------------

def test_graph_is_symmetric_and_connected_enough():
    adjacency = preferential_attachment_graph(50, out_degree=3, seed=4)
    assert len(adjacency) == 50
    for u, neighbors in enumerate(adjacency):
        for v in neighbors:
            assert u in adjacency[int(v)]
        assert u not in neighbors  # no self loops
        assert neighbors.size >= 1


def test_graph_rejects_tiny():
    with pytest.raises(ConfigError):
        preferential_attachment_graph(1)


def test_graph_degree_skew():
    adjacency = preferential_attachment_graph(300, out_degree=3, seed=4)
    degrees = np.array([adj.size for adj in adjacency])
    assert degrees.max() > 4 * np.median(degrees)


def test_random_walks_shape_and_validity():
    adjacency = preferential_attachment_graph(30, seed=6)
    walks = random_walks(adjacency, 45, walk_length=8, seed=6)
    assert len(walks) == 45
    for walk in walks:
        assert walk.size == 8
        for a, b in zip(walk, walk[1:]):
            assert int(b) in adjacency[int(a)]


def test_walks_start_vertices_cycle():
    adjacency = preferential_attachment_graph(10, seed=6)
    walks = random_walks(adjacency, 20, seed=6)
    starts = [int(w[0]) for w in walks]
    assert starts == [i % 10 for i in range(20)]


def test_skipgram_pairs_window():
    walks = [np.array([1, 2, 3, 4])]
    pairs = skipgram_pairs(walks, window=1)
    assert (1, 2) in pairs and (2, 1) in pairs
    assert (1, 3) not in pairs
    # Each interior vertex has 2 neighbors, ends have 1: total 6 pairs.
    assert len(pairs) == 6


def test_skipgram_pairs_no_self_pairs():
    walks = [np.array([5, 5, 5])]
    pairs = skipgram_pairs(walks, window=2)
    assert all(u != v or True for u, v in pairs)  # same ids allowed,
    # but a token never pairs with its own position:
    assert len(pairs) == 6


# -- corpora ---------------------------------------------------------------------

def test_corpus_shapes():
    docs, topic_word = synthetic_corpus(25, 80, n_topics=4, doc_length=15,
                                        seed=8)
    assert len(docs) == 25
    assert topic_word.shape == (4, 80)
    assert np.allclose(topic_word.sum(axis=1), 1.0)
    for doc in docs:
        assert doc.size == 15
        assert doc.max() < 80


def test_corpus_stats():
    docs, _ = synthetic_corpus(10, 50, doc_length=20, seed=1)
    n_docs, vocab, tokens = corpus_stats(docs, 50)
    assert (n_docs, vocab, tokens) == (10, 50, 200)


# -- catalog ----------------------------------------------------------------------

def test_catalog_has_all_paper_datasets():
    assert set(CATALOG) == {
        "kddb", "kdd12", "ctr", "pubmed", "app", "gender", "graph1", "graph2",
    }


def test_catalog_specs_carry_paper_stats():
    assert spec("kddb").paper_stats["cols"] == "29M"
    assert spec("graph2").paper_stats["vertices"] == "115M"


@pytest.mark.parametrize("name", ["kddb", "pubmed", "gender", "graph1"])
def test_catalog_generates(name):
    data = dataset(name, seed=0)
    if name == "graph1":
        adjacency, walks = data
        assert len(walks) > 0
    else:
        assert len(data) > 0


def test_catalog_lr_aspect_ratio():
    params = spec("ctr").params
    # CTR is the widest dataset: more features than any other analogue.
    assert params["dim"] > spec("kddb").params["dim"]
    assert params["nnz_per_row"] > spec("kddb").params["nnz_per_row"]


def test_catalog_unknown_model():
    from repro.data.catalog import DatasetSpec

    with pytest.raises(ValueError):
        DatasetSpec(name="x", model="quantum").generate()


# -- libsvm -----------------------------------------------------------------------

def test_libsvm_round_trip_file(tmp_path):
    rows, _ = sparse_classification(15, 60, 6, seed=9)
    path = tmp_path / "data.libsvm"
    write_libsvm(path, rows)
    back = read_libsvm(path)
    assert len(back) == 15
    for a, b in zip(rows, back):
        assert np.array_equal(a.indices, b.indices)
        assert np.allclose(a.values, b.values)
        assert a.label == b.label


def test_libsvm_parse_errors():
    with pytest.raises(ReproError):
        loads_row("")
    with pytest.raises(ReproError):
        loads_row("1 notafield")


def test_libsvm_one_based_indices():
    row = loads_row("1 1:0.5 3:2.0")
    assert row.indices.tolist() == [0, 2]


@given(st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=99),
        st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
    ),
    min_size=1, max_size=10,
    unique_by=lambda t: t[0],
), st.sampled_from([0.0, 1.0]))
@settings(max_examples=50, deadline=None)
def test_libsvm_string_round_trip_property(entries, label):
    entries.sort()
    indices = np.array([e[0] for e in entries], dtype=np.int64)
    values = np.array([e[1] for e in entries])
    row = SparseRow(indices, values, label)
    back = loads_row(dumps_row(row))
    assert np.array_equal(back.indices, row.indices)
    assert np.allclose(back.values, row.values, rtol=1e-4)
    assert back.label == row.label
