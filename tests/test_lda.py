"""LDA tests: convergence, comm-mode parity, traffic ordering."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.data import synthetic_corpus
from repro.ml.lda import train_lda


@pytest.fixture(scope="module")
def corpus():
    docs, _truth = synthetic_corpus(80, 150, n_topics=5, doc_length=30,
                                    seed=23)
    return docs


def test_likelihood_improves(make_ps2, corpus):
    result = train_lda(make_ps2(), corpus, 150, n_topics=6, n_iterations=6,
                       seed=23)
    losses = [l for _t, l in result.history]
    assert losses[-1] < losses[0]
    assert result.iterations == 6


def test_comm_modes_statistically_identical(make_ps2, corpus):
    """ps2/petuum/glint differ only in communication, never in math."""
    histories = {}
    for comm in ("ps2", "petuum", "glint"):
        result = train_lda(make_ps2(), corpus, 150, n_topics=5,
                           n_iterations=3, seed=23, comm=comm)
        histories[comm] = [l for _t, l in result.history]
    assert histories["ps2"] == pytest.approx(histories["petuum"])
    assert histories["ps2"] == pytest.approx(histories["glint"])


def test_traffic_ordering_ps2_petuum_glint(make_ps2, corpus):
    """Sparse+compressed < dense < dense-twice (the Figure 12(a) mechanism)."""
    totals = {}
    for comm in ("ps2", "petuum", "glint"):
        ctx = make_ps2()
        train_lda(ctx, corpus, 150, n_topics=5, n_iterations=3, seed=23,
                  comm=comm)
        totals[comm] = ctx.metrics.total_bytes()
    assert totals["ps2"] < totals["petuum"] < totals["glint"]


def test_time_ordering_matches_traffic(make_ps2, corpus):
    times = {}
    for comm in ("ps2", "glint"):
        ctx = make_ps2()
        result = train_lda(ctx, corpus, 150, n_topics=5, n_iterations=3,
                           seed=23, comm=comm)
        times[comm] = result.elapsed
    assert times["ps2"] < times["glint"]


def test_word_topic_counts_consistent(make_ps2, corpus):
    """Server-held counts equal the number of tokens, topic by construction."""
    ctx = make_ps2()
    result = train_lda(ctx, corpus, 150, n_topics=5, n_iterations=2, seed=23)
    matrix_id = result.extras["matrix_id"]
    block = ctx.coordinator_client.pull_block(matrix_id, list(range(5)))
    total_tokens = sum(len(d) for d in corpus)
    assert block.sum() == pytest.approx(total_tokens)
    assert block.min() >= -1e-9  # counts never go negative


def test_unknown_comm_mode(make_ps2, corpus):
    with pytest.raises(ConfigError):
        train_lda(make_ps2(), corpus, 150, comm="smoke-signals")


def test_deterministic_across_runs(make_ps2, corpus):
    a = train_lda(make_ps2(), corpus, 150, n_topics=4, n_iterations=2, seed=9)
    b = train_lda(make_ps2(), corpus, 150, n_topics=4, n_iterations=2, seed=9)
    assert a.history == b.history


def test_recovers_topic_structure(make_ps2):
    """On a sharply-separated corpus, learned topics align with truth."""
    docs, truth = synthetic_corpus(120, 60, n_topics=3, doc_length=40,
                                   alpha=0.1, beta=0.01, seed=31)
    ctx = make_ps2()
    result = train_lda(ctx, docs, 60, n_topics=3, n_iterations=15,
                       alpha=0.1, seed=31)
    block = ctx.coordinator_client.pull_block(
        result.extras["matrix_id"], list(range(3))
    )
    learned = block / block.sum(axis=1, keepdims=True)
    # Each true topic should be close to SOME learned topic (in L1).
    for true_row in truth:
        distances = np.abs(learned - true_row).sum(axis=1)
        assert distances.min() < 0.8  # max possible L1 distance is 2.0
