"""Golden determinism matrix: consistency × coalescing × replication.

Every cell of {bsp, ssp(1), asp} × {coalesce on, off} × {replication off,
topk} must be a deterministic function of the seed: two identical runs
produce bit-identical loss histories, final weights and virtual makespans.
On top of per-cell determinism, two cross-cutting invariants:

- replication never changes the math — within any (consistency, coalesce)
  pair the off and topk runs have identical loss histories (replication
  moves bytes, not floats);
- the canonical BSP / coalesce-on / replication-off cell matches a
  checked-in golden hash, so *any* change to the numerical behaviour of
  the default pipeline — however indirect — trips a review gate instead
  of sliding in silently.
"""

import hashlib

import numpy as np
import pytest

from repro.data import sparse_classification
from repro.experiments.runner import make_context
from repro.ml import train_logistic_regression

MODELS = [("bsp", 0), ("ssp", 1), ("asp", 0)]

#: sha256 over the float64 loss history of the canonical cell
#: (bsp, coalesce on, replication off).  Regenerate deliberately with
#: ``_loss_hash(_run("bsp", 0, True, "off")[0])`` if the numerical
#: behaviour of the default pipeline is *intentionally* changed.
GOLDEN_BSP_HASH = \
    "433406334a7eb8f7b7e15868cb34e219bf7f5bb2498596e8931ef3e3df419684"


def _run(consistency, staleness, coalesce, replication,
         timeseries_window=0.0, trace=False, wire_codec="off",
         chain_replicas=0):
    ctx = make_context(
        n_executors=2, n_servers=3, seed=11,
        coalesce_requests=coalesce,
        consistency=consistency, staleness=staleness,
        replication=replication, hot_key_fraction=0.34,
        replication_factor=2,
        timeseries_window=timeseries_window,
        wire_codec=wire_codec,
        chain_replicas=chain_replicas,
    )
    if trace:
        ctx.cluster.tracer.enable()
    rows, _ = sparse_classification(80, 96, 8, seed=11)
    result = train_logistic_regression(
        ctx, rows, 96, optimizer="sgd", n_iterations=3,
        batch_fraction=0.5, seed=11,
    )
    losses = [loss for _t, loss in result.history]
    weights = result.extras["weight"].pull()
    return losses, weights, ctx


def _loss_hash(losses):
    return hashlib.sha256(
        np.asarray(losses, dtype=np.float64).tobytes()
    ).hexdigest()


@pytest.mark.parametrize("consistency,staleness", MODELS)
@pytest.mark.parametrize("coalesce", [True, False])
@pytest.mark.parametrize("replication", ["off", "topk"])
def test_cell_is_bit_identical_across_runs(consistency, staleness, coalesce,
                                           replication):
    losses_a, weights_a, ctx_a = _run(consistency, staleness, coalesce,
                                      replication)
    losses_b, weights_b, ctx_b = _run(consistency, staleness, coalesce,
                                      replication)
    assert losses_a == losses_b
    assert np.array_equal(weights_a, weights_b)
    assert ctx_a.elapsed() == ctx_b.elapsed()
    # The replication knob is live in topk cells and inert in off cells.
    fanouts = ctx_a.metrics.counters.get("replica-fanouts", 0)
    promotions = ctx_a.metrics.counters.get("replica-promotions", 0)
    if replication == "off":
        assert fanouts == 0 and promotions == 0
    else:
        assert promotions > 0
        assert (ctx_a.metrics.counters["rebalance-sweeps"]
                == ctx_b.metrics.counters["rebalance-sweeps"])


@pytest.mark.parametrize("consistency,staleness", MODELS)
@pytest.mark.parametrize("coalesce", [True, False])
def test_replication_never_changes_the_losses(consistency, staleness,
                                              coalesce):
    losses_off, _w_off, _ctx = _run(consistency, staleness, coalesce, "off")
    losses_on, _w_on, _ctx = _run(consistency, staleness, coalesce, "topk")
    assert losses_on == losses_off


def test_canonical_bsp_cell_matches_checked_in_golden():
    losses, _weights, ctx = _run("bsp", 0, True, "off")
    # The off cell must also be byte-oblivious to the feature existing:
    # no replication tag ever appears in the transfer accounting.
    assert not any("replica" in tag for tag in ctx.metrics.bytes_by_tag)
    assert _loss_hash(losses) == GOLDEN_BSP_HASH


@pytest.mark.parametrize("consistency,staleness", MODELS)
@pytest.mark.parametrize("replication", ["off", "topk"])
@pytest.mark.parametrize("wire_codec", ["fp16", "topk"])
def test_codec_cell_is_bit_identical_across_runs(consistency, staleness,
                                                 replication, wire_codec):
    """The codec axis of the matrix: forced-codec cells are deterministic.

    Lossy codecs may legitimately change the losses (that drift is bounded
    and benchmarked elsewhere); what the matrix pins is that every codec
    cell is still a pure function of the seed — two identical runs are
    bit-identical in losses, weights and makespan, replication included.
    The codec=off axis is the pre-existing matrix above plus the canonical
    golden-hash cell below.
    """
    losses_a, weights_a, ctx_a = _run(consistency, staleness, True,
                                      replication, wire_codec=wire_codec)
    losses_b, weights_b, ctx_b = _run(consistency, staleness, True,
                                      replication, wire_codec=wire_codec)
    assert losses_a == losses_b
    assert np.array_equal(weights_a, weights_b)
    assert ctx_a.elapsed() == ctx_b.elapsed()
    # The cost model genuinely ran and both runs decided identically.
    assert ctx_a.metrics.codec_decisions
    assert ctx_a.metrics.codec_decisions == ctx_b.metrics.codec_decisions
    assert ctx_a.metrics.codec_bytes_saved == ctx_b.metrics.codec_bytes_saved


def test_codec_off_cell_still_matches_golden():
    """wire_codec="off" is byte- and float-identical to the pre-codec repo:
    the canonical cell run with the knob explicitly off still hashes to the
    checked-in golden."""
    losses, _weights, ctx = _run("bsp", 0, True, "off", wire_codec="off")
    assert ctx.cluster.costmodel is None
    assert not ctx.metrics.codec_decisions
    assert _loss_hash(losses) == GOLDEN_BSP_HASH


def test_pooled_fanout_bit_identical_under_replication(monkeypatch):
    """Pooled fan-out plans are re-enabled under replication (PR 8): a
    replicated run with the plan pool active must be bit-identical to the
    same run with pooling disabled — the transport undoes stale replica
    retargets and the pool is invalidated on every topology/plan epoch
    bump, so reuse can never change routing outcomes."""
    losses_p, weights_p, ctx_p = _run("bsp", 0, True, "topk")
    # Pooling genuinely engaged: layouts carry epoch-stamped plan pools,
    # and replication was live (promotions happened mid-run).
    assert any("_epoch" in info.layout.op_plans
               for info in ctx_p.master._matrices.values())
    assert ctx_p.metrics.counters.get("replica-promotions", 0) > 0

    from repro.ps.client import PSClient

    monkeypatch.setattr(PSClient, "_plan_pool", lambda self, layout: None)
    losses_u, weights_u, ctx_u = _run("bsp", 0, True, "topk")
    assert not any("_epoch" in info.layout.op_plans
                   for info in ctx_u.master._matrices.values())
    assert losses_p == losses_u
    assert np.array_equal(weights_p, weights_u)
    assert ctx_p.elapsed() == ctx_u.elapsed()
    assert ctx_p.metrics.total_bytes() == ctx_u.metrics.total_bytes()
    assert ctx_p.metrics.total_messages() == ctx_u.metrics.total_messages()


def test_observability_never_perturbs_the_golden_cell():
    """Tracing + time-series sampling on: still the checked-in golden.

    The observability stack only *reads* the virtual clocks — trace
    contexts ride typed messages outside every wire-byte formula and the
    sampler is a passive window sink — so the fully instrumented canonical
    cell must stay bit-identical to the plain one, makespan included.
    """
    plain_losses, plain_weights, plain_ctx = _run("bsp", 0, True, "off")
    losses, weights, ctx = _run("bsp", 0, True, "off",
                                timeseries_window=0.005, trace=True)
    assert _loss_hash(losses) == GOLDEN_BSP_HASH
    assert losses == plain_losses
    assert np.array_equal(weights, plain_weights)
    assert ctx.elapsed() == plain_ctx.elapsed()
    assert (ctx.metrics.total_bytes(), ctx.metrics.total_messages()) == \
        (plain_ctx.metrics.total_bytes(), plain_ctx.metrics.total_messages())
    # the instrumentation actually ran: spans recorded, windows closed
    assert len(ctx.cluster.tracer) > 0
    assert ctx.cluster.timeseries.finalize()


@pytest.mark.parametrize("consistency,staleness", [("bsp", 0), ("ssp", 1)])
@pytest.mark.parametrize("chain", [0, 1, 2])
def test_chain_cell_is_bit_identical_across_runs(consistency, staleness,
                                                 chain):
    """The chain-replication axis of the matrix: {off, M=1, M=2} cells are
    each a pure function of the seed, and the off cell is byte-oblivious
    to the feature existing (no chain object, no chain wire tags)."""
    losses_a, weights_a, ctx_a = _run(consistency, staleness, True, "off",
                                      chain_replicas=chain)
    losses_b, weights_b, ctx_b = _run(consistency, staleness, True, "off",
                                      chain_replicas=chain)
    assert losses_a == losses_b
    assert np.array_equal(weights_a, weights_b)
    assert ctx_a.elapsed() == ctx_b.elapsed()
    assert ctx_a.metrics.total_bytes() == ctx_b.metrics.total_bytes()
    if chain == 0:
        assert ctx_a.cluster.chain is None
        assert not any("chain" in tag for tag in ctx_a.metrics.bytes_by_tag)
        assert "chain-syncs" not in ctx_a.metrics.counters
        if consistency == "bsp":
            assert _loss_hash(losses_a) == GOLDEN_BSP_HASH
    else:
        # The knob is live: every primary carries M fenced chain copies
        # and every applied write fanned out to them.
        assert ctx_a.cluster.chain is not None
        assert ctx_a.metrics.counters["chain-syncs"] > 0
        assert ctx_a.metrics.counters["chain-fanouts"] > 0
        assert ctx_a.metrics.bytes_for_tag("chain-sync") > 0
        assert (ctx_a.metrics.counters["chain-fanouts"]
                == ctx_b.metrics.counters["chain-fanouts"])
        for key, holders in ctx_a.cluster.chain.links.items():
            assert len(holders) == min(chain, ctx_a.master.n_servers - 1)
            assert ctx_a.cluster.chain.key_lag(*key) == 0


@pytest.mark.parametrize("consistency,staleness", [("bsp", 0), ("ssp", 1)])
@pytest.mark.parametrize("chain", [1, 2])
def test_chain_never_changes_the_losses(consistency, staleness, chain):
    """Chain replication moves bytes, not floats: with no failures the
    chained cells produce the exact loss history of the plain cell."""
    losses_off, _w, _ctx = _run(consistency, staleness, True, "off")
    losses_on, _w, _ctx = _run(consistency, staleness, True, "off",
                               chain_replicas=chain)
    assert losses_on == losses_off
