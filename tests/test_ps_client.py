"""Unit tests for the PS client: pulls, pushes, blocks, ranges, recovery."""

import numpy as np
import pytest

from repro.common.errors import PSError
from repro.ps.client import PSClient
from repro.ps.master import PSMaster
from repro.ps.partitioner import RowLayout


@pytest.fixture
def setup(cluster):
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    matrix_id = master.create_matrix(20, n_rows=3)
    return cluster, master, client, matrix_id


def test_dense_pull_round_trip(setup):
    _cluster, _master, client, m = setup
    client.push_assign(m, 0, np.arange(20.0))
    assert np.allclose(client.pull_row(m, 0), np.arange(20.0))


def test_sparse_pull_preserves_input_order(setup):
    _cluster, _master, client, m = setup
    client.push_assign(m, 0, np.arange(20.0))
    got = client.pull_row(m, 0, indices=np.array([13, 2, 7, 19, 0]))
    assert np.allclose(got, [13, 2, 7, 19, 0])


def test_sparse_pull_empty_indices(setup):
    _cluster, _master, client, m = setup
    assert client.pull_row(m, 0, indices=np.array([], dtype=np.int64)).size == 0


def test_push_add_accumulates(setup):
    _cluster, _master, client, m = setup
    client.push_add(m, 0, np.ones(20))
    client.push_add(m, 0, np.array([4.0, 5.0]), indices=np.array([3, 15]))
    got = client.pull_row(m, 0)
    assert got[3] == 5.0 and got[15] == 6.0 and got[0] == 1.0


def test_push_assign_sparse(setup):
    _cluster, _master, client, m = setup
    client.push_assign(m, 0, np.array([9.0]), indices=np.array([11]))
    assert client.pull_row(m, 0)[11] == 9.0


def test_dense_push_wrong_size_rejected(setup):
    _cluster, _master, client, m = setup
    with pytest.raises(PSError):
        client.push_assign(m, 0, np.ones(7))


def test_pull_range(setup):
    _cluster, _master, client, m = setup
    client.push_assign(m, 0, np.arange(20.0))
    assert np.allclose(client.pull_range(m, 0, 5, 15), np.arange(5.0, 15.0))


def test_push_range(setup):
    _cluster, _master, client, m = setup
    client.push_range(m, 0, 5, 10, np.full(5, 7.0))
    got = client.pull_row(m, 0)
    assert np.all(got[5:10] == 7.0)
    assert got[4] == 0.0 and got[10] == 0.0


def test_push_range_add_mode(setup):
    _cluster, _master, client, m = setup
    client.push_range(m, 0, 0, 20, np.ones(20), mode="add")
    client.push_range(m, 0, 0, 20, np.ones(20), mode="add")
    assert np.all(client.pull_row(m, 0) == 2.0)


def test_aggregate_row_combines_servers(setup):
    _cluster, _master, client, m = setup
    values = np.zeros(20)
    values[[1, 8, 17]] = [3.0, -2.0, 5.0]
    client.push_assign(m, 0, values)
    assert client.aggregate_row(m, 0, "sum") == pytest.approx(6.0)
    assert client.aggregate_row(m, 0, "nnz") == 3
    assert client.aggregate_row(m, 0, "max") == 5.0
    assert client.aggregate_row(m, 0, "min") == -2.0
    assert client.aggregate_row(m, 0, "sumsq") == pytest.approx(9 + 4 + 25)


def test_aggregate_unknown_kind(setup):
    _cluster, _master, client, m = setup
    with pytest.raises(PSError):
        client.aggregate_row(m, 0, "mode")


def test_execute_gathers_per_server_partials(setup):
    cluster, _master, client, m = setup
    client.push_assign(m, 0, np.ones(20))
    partials = client.execute(
        lambda arrays: float(arrays[0].sum()), [(m, 0)]
    )
    assert len(partials) == len(cluster.servers)
    assert sum(partials) == pytest.approx(20.0)


def test_execute_requires_operands(setup):
    _cluster, _master, client, m = setup
    with pytest.raises(PSError):
        client.execute(lambda a: None, [])


def test_execute_fire_and_forget_does_not_block(setup):
    cluster, _master, client, m = setup
    client.pull_row(m, 0)  # warm the routing cache
    t0 = cluster.clock.now(client.node_id)
    client.execute(lambda arrays: None, [(m, 0)], wait_response=False)
    # Only the client-side RPC CPU charge lands on the client clock.
    assert cluster.clock.now(client.node_id) - t0 < 1e-4


def test_fill_row(setup):
    _cluster, _master, client, m = setup
    client.fill_row(m, 0, 3.5)
    assert np.all(client.pull_row(m, 0) == 3.5)


def test_pull_block_dense(setup):
    _cluster, _master, client, m = setup
    client.push_assign(m, 0, np.arange(20.0))
    client.push_assign(m, 1, np.arange(20.0) * 2)
    block = client.pull_block(m, [0, 1])
    assert block.shape == (2, 20)
    assert np.allclose(block[1], np.arange(20.0) * 2)


def test_pull_block_sparse_input_order(setup):
    _cluster, _master, client, m = setup
    client.push_assign(m, 0, np.arange(20.0))
    client.push_assign(m, 2, np.arange(20.0) + 100)
    block = client.pull_block(m, [0, 2], indices=np.array([15, 3]))
    assert np.allclose(block[0], [15, 3])
    assert np.allclose(block[1], [115, 103])


def test_push_block_add(setup):
    _cluster, _master, client, m = setup
    delta = np.stack([np.full(3, 1.0), np.full(3, 2.0)])
    client.push_block_add(m, [0, 1], delta, indices=np.array([0, 10, 19]))
    assert client.pull_row(m, 0)[10] == 1.0
    assert client.pull_row(m, 1)[19] == 2.0


def test_push_block_add_dense(setup):
    _cluster, _master, client, m = setup
    delta = np.stack([np.ones(20), np.full(20, 3.0)])
    client.push_block_add(m, [0, 1], delta)
    assert np.all(client.pull_row(m, 1) == 3.0)


def test_block_compression_reduces_bytes(setup):
    cluster, _master, client, m = setup
    before = cluster.metrics.bytes_for_tag("pull-block:resp")
    client.pull_block(m, [0, 1, 2], value_bytes=8)
    full = cluster.metrics.bytes_for_tag("pull-block:resp") - before
    before = cluster.metrics.bytes_for_tag("pull-block:resp")
    client.pull_block(m, [0, 1, 2], value_bytes=4)
    compressed = cluster.metrics.bytes_for_tag("pull-block:resp") - before
    assert compressed < full


def test_recovery_after_server_crash(setup):
    _cluster, master, client, m = setup
    client.push_assign(m, 0, np.arange(20.0))
    master.checkpoint_all()
    master.server(1).crash()
    got = client.pull_row(m, 0)  # triggers transparent recovery
    assert np.allclose(got, np.arange(20.0))
    assert master.checkpoints.recoveries == 1


def test_row_layout_routing(cluster):
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    m = master.create_matrix(16, n_rows=4, layout=RowLayout(16, 3))
    client.push_assign(m, 2, np.arange(16.0))
    assert np.allclose(client.pull_row(m, 2), np.arange(16.0))
    got = client.pull_row(m, 2, indices=np.array([9, 4]))
    assert np.allclose(got, [9, 4])


def test_sparse_cheaper_than_dense_pull(setup):
    cluster, _master, client, m = setup
    before = cluster.metrics.bytes_for_tag("pull:resp")
    client.pull_row(m, 0)
    dense_bytes = cluster.metrics.bytes_for_tag("pull:resp") - before
    before = cluster.metrics.bytes_for_tag("pull:resp")
    client.pull_row(m, 0, indices=np.array([0]))
    sparse_bytes = cluster.metrics.bytes_for_tag("pull:resp") - before
    assert sparse_bytes < dense_bytes
