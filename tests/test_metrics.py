"""Unit tests for the metrics registry."""

from repro.cluster.metrics import MetricsRegistry


def test_record_transfer_accounts_both_sides():
    m = MetricsRegistry()
    m.record_transfer("a", "b", 100, tag="x")
    assert m.bytes_sent["a"] == 100
    assert m.bytes_received["b"] == 100
    assert m.bytes_for_tag("x") == 100
    assert m.messages_by_tag["x"] == 1


def test_totals():
    m = MetricsRegistry()
    m.record_transfer("a", "b", 100, tag="x")
    m.record_transfer("b", "a", 50, tag="y")
    assert m.total_bytes() == 150
    assert m.total_messages() == 2


def test_unknown_tag_is_zero():
    assert MetricsRegistry().bytes_for_tag("never") == 0.0


def test_record_compute():
    m = MetricsRegistry()
    m.record_compute("n", 0.5, tag="work")
    m.record_compute("n", 0.25, tag="work")
    assert m.compute_seconds["n"] == 0.75
    assert m.compute_counts["work"] == 2


def test_compute_counts_do_not_collide_with_increment():
    # Regression: record_compute used to write "compute:<tag>" into the
    # same dict as free-form increment names, so a user counter named
    # "compute:work" was silently polluted by compute accounting.
    m = MetricsRegistry()
    m.increment("compute:work", 7)
    m.record_compute("n", 0.5, tag="work")
    assert m.counters["compute:work"] == 7
    assert m.compute_counts["work"] == 1


def test_increment():
    m = MetricsRegistry()
    m.increment("retries")
    m.increment("retries", 4)
    assert m.counters["retries"] == 5


def test_snapshot_is_detached():
    m = MetricsRegistry()
    m.record_transfer("a", "b", 10, tag="t")
    snap = m.snapshot()
    m.record_transfer("a", "b", 10, tag="t")
    assert snap["bytes_by_tag"]["t"] == 10
    assert m.bytes_for_tag("t") == 20


def test_snapshot_has_new_sections():
    m = MetricsRegistry()
    m.record_compute("n", 0.5, tag="work")
    m.record_request("server-0", tag="ps-read")
    m.record_shard_access(3, 1, 40)
    snap = m.snapshot()
    assert snap["compute_counts"]["work"] == 1
    assert snap["requests_by_server"]["server-0"] == 1
    assert snap["shard_requests"][(3, 1)] == 1
    assert snap["shard_values"][(3, 1)] == 40.0


def test_diff_subtracts_and_drops_zero_deltas():
    m = MetricsRegistry()
    m.record_transfer("a", "b", 10, tag="warmup")
    before = m.snapshot()
    m.record_transfer("a", "b", 30, tag="phase")
    delta = MetricsRegistry.diff(before, m.snapshot())
    assert delta["bytes_by_tag"] == {"phase": 30}
    assert delta["messages_by_tag"] == {"phase": 1}
    # The warmup tag did not change between the snapshots: not in the diff.
    assert "warmup" not in delta.get("bytes_by_tag", {})


def test_diff_handles_missing_sections():
    delta = MetricsRegistry.diff({}, {"counters": {"x": 2}})
    assert delta == {"counters": {"x": 2}}


def test_reset_returns_pre_reset_snapshot():
    m = MetricsRegistry()
    m.record_transfer("a", "b", 10)
    m.record_compute("a", 1.0)
    m.increment("x")
    m.observe("pull", 0.5)
    snap = m.reset()
    assert snap["counters"]["x"] == 1
    assert snap["compute_seconds"]["a"] == 1.0
    assert m.total_bytes() == 0
    assert not m.compute_seconds
    assert not m.counters
    assert not m.latency


def test_request_counts_and_load_imbalance():
    m = MetricsRegistry()
    for _ in range(9):
        m.record_request("server-0", tag="ps-read")
    m.record_request("server-1", tag="ps-read")
    peak, mean, ratio = m.load_imbalance()
    assert peak == 9
    assert mean == 5.0
    assert ratio == 1.8
    assert m.requests_by_server_tag[("server-0", "ps-read")] == 9


def test_load_imbalance_empty_registry():
    assert MetricsRegistry().load_imbalance() == (0, 0.0, 1.0)


def test_hot_shards_flags_skewed_shard():
    m = MetricsRegistry()
    # Matrix 0: shard 2 sees 10x the traffic of its siblings.
    for server in range(4):
        m.record_shard_access(0, server, 10)
    for _ in range(39):
        m.record_shard_access(0, 2, 10)
    # Matrix 1 is perfectly balanced: no hot shard there.
    for server in range(4):
        m.record_shard_access(1, server, 10)
    hot = m.hot_shards(factor=2.0)
    assert len(hot) == 1
    matrix_id, server_index, requests, values, ratio = hot[0]
    assert (matrix_id, server_index) == (0, 2)
    assert requests == 40
    assert ratio > 3.0


def test_observe_builds_percentiles():
    m = MetricsRegistry()
    for value in range(1, 101):
        m.observe("pull", value / 1000.0)
    summary = m.latency_summary()["pull"]
    assert summary["count"] == 100
    assert summary["p50"] < summary["p95"] < summary["p99"] <= summary["max"]
    assert m.percentile("pull", 50) == summary["p50"]
    assert m.percentile("never-observed", 99) == 0.0
