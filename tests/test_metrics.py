"""Unit tests for the metrics registry."""

from repro.cluster.metrics import MetricsRegistry


def test_record_transfer_accounts_both_sides():
    m = MetricsRegistry()
    m.record_transfer("a", "b", 100, tag="x")
    assert m.bytes_sent["a"] == 100
    assert m.bytes_received["b"] == 100
    assert m.bytes_for_tag("x") == 100
    assert m.messages_by_tag["x"] == 1


def test_totals():
    m = MetricsRegistry()
    m.record_transfer("a", "b", 100, tag="x")
    m.record_transfer("b", "a", 50, tag="y")
    assert m.total_bytes() == 150
    assert m.total_messages() == 2


def test_unknown_tag_is_zero():
    assert MetricsRegistry().bytes_for_tag("never") == 0.0


def test_record_compute():
    m = MetricsRegistry()
    m.record_compute("n", 0.5, tag="work")
    m.record_compute("n", 0.25, tag="work")
    assert m.compute_seconds["n"] == 0.75
    assert m.counters["compute:work"] == 2


def test_increment():
    m = MetricsRegistry()
    m.increment("retries")
    m.increment("retries", 4)
    assert m.counters["retries"] == 5


def test_snapshot_is_detached():
    m = MetricsRegistry()
    m.record_transfer("a", "b", 10, tag="t")
    snap = m.snapshot()
    m.record_transfer("a", "b", 10, tag="t")
    assert snap["bytes_by_tag"]["t"] == 10
    assert m.bytes_for_tag("t") == 20


def test_reset():
    m = MetricsRegistry()
    m.record_transfer("a", "b", 10)
    m.record_compute("a", 1.0)
    m.increment("x")
    m.reset()
    assert m.total_bytes() == 0
    assert not m.compute_seconds
    assert not m.counters
