"""Unit tests for the metrics registry."""

from repro.cluster.metrics import MetricsRegistry


def test_record_transfer_accounts_both_sides():
    m = MetricsRegistry()
    m.record_transfer("a", "b", 100, tag="x")
    assert m.bytes_sent["a"] == 100
    assert m.bytes_received["b"] == 100
    assert m.bytes_for_tag("x") == 100
    assert m.messages_by_tag["x"] == 1


def test_totals():
    m = MetricsRegistry()
    m.record_transfer("a", "b", 100, tag="x")
    m.record_transfer("b", "a", 50, tag="y")
    assert m.total_bytes() == 150
    assert m.total_messages() == 2


def test_unknown_tag_is_zero():
    assert MetricsRegistry().bytes_for_tag("never") == 0.0


def test_record_compute():
    m = MetricsRegistry()
    m.record_compute("n", 0.5, tag="work")
    m.record_compute("n", 0.25, tag="work")
    assert m.compute_seconds["n"] == 0.75
    assert m.compute_counts["work"] == 2


def test_compute_counts_do_not_collide_with_increment():
    # Regression: record_compute used to write "compute:<tag>" into the
    # same dict as free-form increment names, so a user counter named
    # "compute:work" was silently polluted by compute accounting.
    m = MetricsRegistry()
    m.increment("compute:work", 7)
    m.record_compute("n", 0.5, tag="work")
    assert m.counters["compute:work"] == 7
    assert m.compute_counts["work"] == 1


def test_increment():
    m = MetricsRegistry()
    m.increment("retries")
    m.increment("retries", 4)
    assert m.counters["retries"] == 5


def test_snapshot_is_detached():
    m = MetricsRegistry()
    m.record_transfer("a", "b", 10, tag="t")
    snap = m.snapshot()
    m.record_transfer("a", "b", 10, tag="t")
    assert snap["bytes_by_tag"]["t"] == 10
    assert m.bytes_for_tag("t") == 20


def test_snapshot_has_new_sections():
    m = MetricsRegistry()
    m.record_compute("n", 0.5, tag="work")
    m.record_request("server-0", tag="ps-read")
    m.record_shard_access(3, 1, 40)
    snap = m.snapshot()
    assert snap["compute_counts"]["work"] == 1
    assert snap["requests_by_server"]["server-0"] == 1
    assert snap["shard_requests"][(3, 1)] == 1
    assert snap["shard_values"][(3, 1)] == 40.0


def test_diff_subtracts_and_drops_zero_deltas():
    m = MetricsRegistry()
    m.record_transfer("a", "b", 10, tag="warmup")
    before = m.snapshot()
    m.record_transfer("a", "b", 30, tag="phase")
    delta = MetricsRegistry.diff(before, m.snapshot())
    assert delta["bytes_by_tag"] == {"phase": 30}
    assert delta["messages_by_tag"] == {"phase": 1}
    # The warmup tag did not change between the snapshots: not in the diff.
    assert "warmup" not in delta.get("bytes_by_tag", {})


def test_diff_handles_missing_sections():
    delta = MetricsRegistry.diff({}, {"counters": {"x": 2}})
    assert delta == {"counters": {"x": 2}}


def test_reset_returns_pre_reset_snapshot():
    m = MetricsRegistry()
    m.record_transfer("a", "b", 10)
    m.record_compute("a", 1.0)
    m.increment("x")
    m.observe("pull", 0.5)
    snap = m.reset()
    assert snap["counters"]["x"] == 1
    assert snap["compute_seconds"]["a"] == 1.0
    assert m.total_bytes() == 0
    assert not m.compute_seconds
    assert not m.counters
    assert not m.latency


def test_request_counts_and_load_imbalance():
    m = MetricsRegistry()
    for _ in range(9):
        m.record_request("server-0", tag="ps-read")
    m.record_request("server-1", tag="ps-read")
    peak, mean, ratio = m.load_imbalance()
    assert peak == 9
    assert mean == 5.0
    assert ratio == 1.8
    assert m.requests_by_server_tag[("server-0", "ps-read")] == 9


def test_load_imbalance_empty_registry():
    assert MetricsRegistry().load_imbalance() == (0, 0.0, 1.0)


def test_hot_shards_flags_skewed_shard():
    m = MetricsRegistry()
    # Matrix 0: shard 2 sees 10x the traffic of its siblings.
    for server in range(4):
        m.record_shard_access(0, server, 10)
    for _ in range(39):
        m.record_shard_access(0, 2, 10)
    # Matrix 1 is perfectly balanced: no hot shard there.
    for server in range(4):
        m.record_shard_access(1, server, 10)
    hot = m.hot_shards(factor=2.0)
    assert len(hot) == 1
    matrix_id, server_index, requests, values, ratio = hot[0]
    assert (matrix_id, server_index) == (0, 2)
    assert requests == 40
    assert ratio > 3.0


def test_snapshot_includes_tagged_requests_and_latency():
    # Regression: snapshot() used to omit requests_by_server_tag and the
    # latency summaries entirely, so phase diffs silently lost both.
    m = MetricsRegistry()
    m.record_request("server-0", tag="ps-read")
    m.record_request("server-0", tag="ps-write")
    m.observe("pull", 0.25)
    snap = m.snapshot()
    assert snap["requests_by_server_tag"][("server-0", "ps-read")] == 1
    assert snap["requests_by_server_tag"][("server-0", "ps-write")] == 1
    assert snap["latency"]["pull"]["count"] == 1
    assert snap["latency"]["pull"]["max"] == 0.25


def test_snapshot_reset_round_trip():
    # reset() must return exactly what snapshot() would have, across every
    # section, and leave the registry structurally empty.
    m = MetricsRegistry()
    m.record_transfer("a", "b", 64, tag="t", messages=4)
    m.record_compute("a", 0.5, tag="work")
    m.increment("retries", 2)
    m.record_request("server-0", tag="ps-read")
    m.record_shard_access(0, 1, 10, nbytes=128.0)
    m.record_cache_hit("exec-0", bytes_saved=32.0)
    m.record_cache_miss("exec-0")
    m.observe("pull", 0.125)
    snap = m.snapshot()
    assert m.reset() == snap
    empty = m.snapshot()
    assert all(not section for section in empty.values())
    # and the diff of the round trip is "nothing happened"
    assert MetricsRegistry.diff(empty, m.snapshot()) == {}


def test_diff_handles_tuple_keys_and_latency_counts():
    m = MetricsRegistry()
    m.record_request("server-0", tag="ps-read")
    m.observe("pull", 0.1)
    before = m.snapshot()
    m.record_request("server-0", tag="ps-read")
    m.record_request("server-1", tag="ps-write")
    m.observe("pull", 0.9)
    m.observe("push", 0.2)
    delta = MetricsRegistry.diff(before, m.snapshot())
    assert delta["requests_by_server_tag"] == {
        ("server-0", "ps-read"): 1,
        ("server-1", "ps-write"): 1,
    }
    # dict-valued latency summaries diff by observation count
    assert delta["latency"] == {"pull": 1, "push": 1}


def test_hot_shards_query_does_not_mutate():
    # Regression: the .get()-free implementation inserted zero entries into
    # the shard_requests/shard_values defaultdicts while *reading*, so a
    # report rendered between two snapshots changed the second snapshot.
    m = MetricsRegistry()
    m.record_shard_access(0, 0, n_values=100, n_requests=10, nbytes=800.0)
    m.record_shard_access(0, 1, n_values=10, n_requests=1, nbytes=80.0)
    # a shard hot by byte heat that never recorded a request count: the
    # old defaultdict lookup inserted a zero entry for it while reading
    m.shard_bytes[(0, 2)] = 9000.0
    before = m.snapshot()
    hot = m.hot_shards(factor=1.5)
    assert [(mat, shard) for mat, shard, _, _, _ in hot] == [(0, 2)]
    assert m.snapshot() == before
    assert set(m.shard_requests) == {(0, 0), (0, 1)}
    assert set(m.shard_values) == {(0, 0), (0, 1)}


def test_observe_builds_percentiles():
    m = MetricsRegistry()
    for value in range(1, 101):
        m.observe("pull", value / 1000.0)
    summary = m.latency_summary()["pull"]
    assert summary["count"] == 100
    assert summary["p50"] < summary["p95"] < summary["p99"] <= summary["max"]
    assert m.percentile("pull", 50) == summary["p50"]
    assert m.percentile("never-observed", 99) == 0.0
