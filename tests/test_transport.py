"""Wire-accounting regression suite for the typed transport layer.

Two kinds of guarantees:

1. Every client op transfers exactly the bytes its message objects predict
   (message ``wire_bytes()``/``response_bytes()`` plus the per-transfer NIC
   envelope), for every op type and both coalescing modes.
2. The refactor is behavior-preserving where it claims to be: a traced LR
   epoch is byte- and makespan-identical to the pre-refactor closure-based
   path (golden numbers captured before the transport landed), regardless
   of the ``coalesce_requests`` knob — row ops issue one message per server
   either way.
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.common.sizeof import FLOAT_BYTES, INDEX_BYTES, \
    MESSAGE_OVERHEAD_BYTES
from repro.config import ClusterConfig
from repro.data import sparse_classification
from repro.experiments.runner import make_context
from repro.ml import train_logistic_regression
from repro.ps import messages
from repro.ps.client import PSClient
from repro.ps.master import PSMaster


def _rig(coalesce=True, n_servers=3):
    config = ClusterConfig(n_executors=2, n_servers=n_servers, seed=3,
                           coalesce_requests=coalesce)
    cluster = Cluster(config)
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    return cluster, master, client


def _tag(cluster, tag):
    """(bytes, wire_messages, logical_messages) accounted under *tag*."""
    m = cluster.metrics
    return (m.bytes_by_tag.get(tag, 0.0), m.messages_by_tag.get(tag, 0),
            m.logical_messages_by_tag.get(tag, 0))


def _on_wire(payloads):
    """Total bytes a list of message payload sizes costs on the wire."""
    return float(sum(p + MESSAGE_OVERHEAD_BYTES for p in payloads))


# -- per-op wire accounting ---------------------------------------------------


def test_dense_pull_row_bytes_match_messages(coalesce=True):
    cluster, master, client = _rig(coalesce)
    m = master.create_matrix(30)
    client.pull_row(m, 0)
    shards = master.layout(m).shards_for_row(0)
    req = [messages.PullRowRequest(s, m, 0, stop - start)
           for s, start, stop in shards]
    assert _tag(cluster, "pull:req") == (
        _on_wire([r.wire_bytes() for r in req]), len(req), len(req))
    assert _tag(cluster, "pull:resp") == (
        _on_wire([r.response_bytes() for r in req]), len(req), len(req))


def test_sparse_pull_row_bytes_match_messages():
    cluster, master, client = _rig()
    m = master.create_matrix(30)
    idx = np.array([0, 7, 13, 22, 29])
    client.pull_row(m, 0, indices=idx)
    groups = master.layout(m).split_indices(np.sort(idx))
    req = [messages.PullRowRequest(s, m, 0, g.size, indices=g)
           for s, g in groups.items()]
    assert _tag(cluster, "pull:req") == (
        _on_wire([r.wire_bytes() for r in req]), len(req), len(req))
    assert _tag(cluster, "pull:resp") == (
        _on_wire([r.response_bytes() for r in req]), len(req), len(req))
    # Sanity: the formula module agrees with the message objects.
    for r in req:
        assert r.wire_bytes() == messages.sparse_pull_request_bytes(
            len(r.indices))


def test_push_bytes_match_messages():
    cluster, master, client = _rig()
    m = master.create_matrix(30)
    client.push_add(m, 0, np.ones(30))
    shards = master.layout(m).shards_for_row(0)
    dense = _on_wire([messages.dense_push_bytes(stop - start)
                      for _s, start, stop in shards])
    assert _tag(cluster, "push:req") == (dense, len(shards), len(shards))

    idx = np.array([1, 8, 20])
    client.push_assign(m, 0, np.ones(3), indices=idx)
    groups = master.layout(m).split_indices(np.sort(idx))
    sparse = _on_wire([messages.sparse_push_bytes(g.size)
                       for g in groups.values()])
    n = len(shards) + len(groups)
    assert _tag(cluster, "push:req") == (dense + sparse, n, n)
    # Pushes are fire-and-forget: no response traffic at all.
    assert _tag(cluster, "push:resp") == (0.0, 0, 0)


def test_range_ops_bytes_match_messages():
    cluster, master, client = _rig()
    m = master.create_matrix(30)
    client.pull_range(m, 0, 5, 25)
    overlaps = client._range_shards(master.layout(m), 0, 5, 25)
    req = [messages.PullRangeRequest(s, m, 0, lo, hi)
           for s, lo, hi in overlaps]
    # Range ops share the pull/push wire tags (the server sees a pull).
    assert _tag(cluster, "pull:req") == (
        _on_wire([r.wire_bytes() for r in req]), len(req), len(req))
    assert _tag(cluster, "pull:resp") == (
        _on_wire([r.response_bytes() for r in req]), len(req), len(req))

    client.push_range(m, 0, 5, 25, np.ones(20))
    wreq = [messages.PushRangeRequest(s, m, 0, lo, hi,
                                      np.ones(hi - lo))
            for s, lo, hi in overlaps]
    assert _tag(cluster, "push:req") == (
        _on_wire([r.wire_bytes() for r in wreq]), len(wreq), len(wreq))
    assert _tag(cluster, "push:resp") == (0.0, 0, 0)


def test_aggregate_kernel_fill_bytes_match_messages():
    cluster, master, client = _rig()
    m = master.create_matrix(30)
    client.push_assign(m, 0, np.arange(30.0))
    n_shards = len(master.layout(m).shards_for_row(0))

    total = client.aggregate_row(m, 0, "sum")
    assert total == pytest.approx(np.arange(30.0).sum())
    assert _tag(cluster, "rowagg:req") == (
        _on_wire([messages.scalar_op_request_bytes()] * n_shards),
        n_shards, n_shards)
    assert _tag(cluster, "rowagg:resp") == (
        _on_wire([messages.scalar_response_bytes()] * n_shards),
        n_shards, n_shards)

    client.execute(lambda arrays: float(arrays[0].sum()), [(m, 0), (m, 0)])
    assert _tag(cluster, "kernel:req") == (
        _on_wire([messages.scalar_op_request_bytes(2)] * n_shards),
        n_shards, n_shards)
    assert _tag(cluster, "kernel:resp") == (
        _on_wire([messages.scalar_response_bytes()] * n_shards),
        n_shards, n_shards)

    client.fill_row(m, 0, 2.5)
    assert _tag(cluster, "fill:req") == (
        _on_wire([messages.REQUEST_HEADER_BYTES + FLOAT_BYTES] * n_shards),
        n_shards, n_shards)
    assert _tag(cluster, "fill:resp") == (0.0, 0, 0)


def test_routing_bytes_use_central_formula():
    cluster, master, client = _rig()
    m = master.create_matrix(30)
    client.pull_row(m, 0)
    n_servers = master.layout(m).n_servers
    assert _tag(cluster, "routing:req") == (
        _on_wire([messages.REQUEST_HEADER_BYTES]), 1, 1)
    assert _tag(cluster, "routing:resp") == (
        _on_wire([messages.routing_response_bytes(n_servers)]), 1, 1)


# -- coalescing ---------------------------------------------------------------


def test_pull_block_coalesced_issues_one_message_per_server():
    cluster, master, client = _rig(coalesce=True)
    m = master.create_matrix(30, n_rows=4)
    client.pull_block(m, [0, 1, 2, 3])
    shards = master.layout(m).shards_for_row(0)
    n_servers = len(shards)
    # Exactly S wire messages carrying S x R logical requests.
    req_bytes, wire, logical = _tag(cluster, "pull-block:req")
    assert wire == n_servers
    assert logical == n_servers * 4
    envelope = (messages.REQUEST_HEADER_BYTES
                + 4 * messages.SUBREQUEST_HEADER_BYTES)
    assert req_bytes == _on_wire([envelope] * n_servers)
    # Batched response: one header per envelope + concatenated payloads.
    resp_bytes, resp_wire, resp_logical = _tag(cluster, "pull-block:resp")
    assert resp_wire == n_servers
    assert resp_logical == n_servers * 4
    assert resp_bytes == _on_wire([
        messages.RESPONSE_HEADER_BYTES + 4 * (stop - start) * FLOAT_BYTES
        for _s, start, stop in shards
    ])
    assert cluster.metrics.counters["coalesced-batches"] == n_servers
    assert cluster.metrics.counters["coalesced-requests"] == n_servers * 4


def test_uncoalesced_block_pays_per_request_headers():
    coalesced, master_a, client_a = _rig(coalesce=True)
    plain, master_b, client_b = _rig(coalesce=False)
    for master, client in ((master_a, client_a), (master_b, client_b)):
        m = master.create_matrix(30, n_rows=4)
        client.pull_block(m, [0, 1, 2, 3])
        client.push_block_add(m, [0, 1, 2, 3], np.ones((4, 30)))
    n_servers = 3
    for tag in ("pull-block:req", "push-block:req"):
        bytes_on, wire_on, logical_on = _tag(coalesced, tag)
        bytes_off, wire_off, logical_off = _tag(plain, tag)
        assert wire_on == n_servers
        assert wire_off == n_servers * 4
        assert logical_on == logical_off == n_servers * 4
        # Coalescing strictly reduces header + envelope bytes.
        assert bytes_on < bytes_off
        # Each coalesced-away request saves a full header + NIC envelope;
        # every sub-request (including the batch's first) pays its 16-byte
        # descriptor instead.
        saved = (logical_on - wire_on) * (
            messages.REQUEST_HEADER_BYTES + MESSAGE_OVERHEAD_BYTES
        ) - logical_on * messages.SUBREQUEST_HEADER_BYTES
        assert bytes_off - bytes_on == saved
    # Payload-identical: responses carry the same values either way.
    assert _tag(coalesced, "pull-block:resp")[0] < \
        _tag(plain, "pull-block:resp")[0]
    # And the coalesced run finishes no later.
    assert coalesced.elapsed() <= plain.elapsed()


def test_sparse_block_ships_shared_index_list_once():
    cluster, master, client = _rig(coalesce=True)
    m = master.create_matrix(30, n_rows=3)
    idx = np.array([0, 7, 13, 22, 29])
    client.pull_block(m, [0, 1, 2], indices=idx)
    groups = master.layout(m).split_indices(np.sort(idx))
    expected = _on_wire([
        messages.REQUEST_HEADER_BYTES
        + 3 * messages.SUBREQUEST_HEADER_BYTES
        + g.size * INDEX_BYTES  # the shared list, encoded ONCE per server
        for g in groups.values()
    ])
    req_bytes, wire, logical = _tag(cluster, "pull-block:req")
    assert wire == len(groups)
    assert logical == 3 * len(groups)
    assert req_bytes == expected


def test_singleton_groups_ignore_the_knob():
    """Row ops issue one message per server; batching never engages, so
    the knob cannot perturb their wire traffic or timing."""
    runs = {}
    for coalesce in (True, False):
        cluster, master, client = _rig(coalesce)
        m = master.create_matrix(30)
        client.push_assign(m, 0, np.arange(30.0))
        client.pull_row(m, 0, indices=[1, 7, 29])
        client.aggregate_row(m, 0, "sumsq")
        # Nothing was ever batched, even with the knob on.
        assert cluster.metrics.counters.get("coalesced-batches", 0) == 0
        runs[coalesce] = (
            dict(cluster.metrics.bytes_by_tag),
            dict(cluster.metrics.messages_by_tag),
            cluster.elapsed(),
        )
    assert runs[True] == runs[False]


def test_batch_request_envelope_math():
    idx = np.array([1, 2, 3])
    subs = [messages.PullRowRequest(0, "m", row, 3, indices=idx)
            for row in range(4)]
    batch = messages.BatchRequest(subs)
    assert batch.message_count() == 4
    assert batch.wire_bytes() == (
        messages.REQUEST_HEADER_BYTES
        + 4 * messages.SUBREQUEST_HEADER_BYTES
        + 3 * INDEX_BYTES  # shared list deduplicated by identity
    )
    # A distinct (equal-valued) array is a distinct payload.
    other = messages.BatchRequest(
        subs + [messages.PullRowRequest(0, "m", 9, 3, indices=idx.copy())]
    )
    assert other.wire_bytes() == (
        messages.REQUEST_HEADER_BYTES
        + 5 * messages.SUBREQUEST_HEADER_BYTES
        + 2 * 3 * INDEX_BYTES
    )
    assert batch.response_bytes() == (
        messages.RESPONSE_HEADER_BYTES + 4 * 3 * FLOAT_BYTES
    )
    # Mixed fire-and-forget subs contribute no response payload.
    push = messages.PushRequest(0, "m", 0, np.ones(3), indices=idx)
    assert messages.BatchRequest([push]).response_bytes() is None
    from repro.common.errors import PSError
    with pytest.raises(PSError):
        messages.BatchRequest([])
    with pytest.raises(PSError):
        messages.BatchRequest([subs[0],
                               messages.PullRowRequest(1, "m", 0, 3)])
    with pytest.raises(PSError):
        messages.BatchRequest([batch])


def test_ops_flow_through_typed_messages(monkeypatch):
    """Structural check: every client op hands typed Request values to the
    transport — no closures, no direct server calls."""
    cluster, master, client = _rig()
    m = master.create_matrix(20, n_rows=2)
    seen = []
    original = client.transport.send_all

    def spy(requests, **kwargs):
        seen.extend(requests)
        return original(requests, **kwargs)

    monkeypatch.setattr(client.transport, "send_all", spy)
    client.pull_row(m, 0)
    client.push_add(m, 0, np.ones(20))
    client.pull_block(m, [0, 1])
    client.aggregate_row(m, 0, "sum")
    client.execute(lambda arrays: 0.0, [(m, 0)])
    client.fill_row(m, 1, 1.0)
    assert seen
    assert all(isinstance(r, messages.Request) for r in seen)
    kinds = {type(r) for r in seen}
    assert messages.PullRowRequest in kinds
    assert messages.PushRequest in kinds
    assert messages.AggregateRequest in kinds
    assert messages.KernelRequest in kinds
    assert messages.FillRequest in kinds


# -- before/after invariant ---------------------------------------------------

#: Captured from the pre-refactor closure-based RPC path (commit db72004)
#: for this exact workload: 4 executors / 3 servers, seed 7, two SGD
#: epochs of LR on 80x400 sparse data.  The transport refactor must not
#: move a single byte or virtual nanosecond on this path.
GOLDEN_LR_ELAPSED = 0.0033703177499999986
GOLDEN_LR_TOTAL_BYTES = 55832.0
GOLDEN_LR_TOTAL_MESSAGES = 124
GOLDEN_LR_BYTES_BY_TAG = {
    "collect:result": 640.0,
    "data-load": 20736.0,
    "fill:req": 1080.0,
    "kernel:req": 1488.0,
    "ps-allocate": 336.0,
    "pull:req": 7248.0,
    "pull:resp": 6864.0,
    "push:req": 11808.0,
    "routing:req": 448.0,
    "routing:resp": 576.0,
    "task-launch": 4608.0,
}
GOLDEN_LR_MESSAGES_BY_TAG = {
    "collect:result": 8,
    "data-load": 4,
    "fill:req": 9,
    "kernel:req": 12,
    "ps-allocate": 3,
    "pull:req": 24,
    "pull:resp": 24,
    "push:req": 24,
    "routing:req": 4,
    "routing:resp": 4,
    "task-launch": 8,
}


@pytest.mark.parametrize("coalesce", [True, False])
def test_lr_epoch_is_identical_to_prerefactor_path(coalesce):
    """The LR epoch's row ops are singleton-per-server, so the refactored
    transport must reproduce the pre-refactor wire traffic and makespan
    exactly — with coalescing on AND off."""
    ctx = make_context(n_executors=4, n_servers=3, seed=7,
                       coalesce_requests=coalesce)
    rows, _ = sparse_classification(80, 400, 8, seed=7)
    result = train_logistic_regression(ctx, rows, 400, optimizer="sgd",
                                       n_iterations=2, batch_fraction=0.5,
                                       seed=7)
    assert dict(ctx.metrics.bytes_by_tag) == GOLDEN_LR_BYTES_BY_TAG
    assert dict(ctx.metrics.messages_by_tag) == GOLDEN_LR_MESSAGES_BY_TAG
    assert ctx.metrics.total_bytes() == GOLDEN_LR_TOTAL_BYTES
    assert ctx.metrics.total_messages() == GOLDEN_LR_TOTAL_MESSAGES
    assert ctx.elapsed() == pytest.approx(GOLDEN_LR_ELAPSED, rel=1e-9)
    assert result.final_loss == pytest.approx(0.6760745795596123, rel=1e-9)
    # Nothing on this path ever coalesced.
    assert "coalesced-batches" not in ctx.metrics.counters
