"""node2vec walks and LINE — the rest of the paper's embedding family."""

import numpy as np
import pytest

from repro.data import (
    edge_pairs,
    node2vec_walks,
    preferential_attachment_graph,
    random_walks,
)
from repro.ml import train_deepwalk, train_embedding_pairs, train_line


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment_graph(40, out_degree=3, seed=19)


# -- node2vec walks ----------------------------------------------------------

def test_node2vec_walks_are_valid(graph):
    walks = node2vec_walks(graph, 30, walk_length=8, p=0.5, q=2.0, seed=19)
    assert len(walks) == 30
    for walk in walks:
        for a, b in zip(walk, walk[1:]):
            assert int(b) in graph[int(a)]


def test_node2vec_deterministic(graph):
    a = node2vec_walks(graph, 10, p=0.5, q=2.0, seed=3)
    b = node2vec_walks(graph, 10, p=0.5, q=2.0, seed=3)
    assert all(np.array_equal(x, y) for x, y in zip(a, b))


def test_node2vec_low_p_returns_more_often(graph):
    """p << 1 makes the walk bounce back to its previous vertex."""

    def return_rate(p):
        walks = node2vec_walks(graph, 200, walk_length=10, p=p, q=1.0,
                               seed=7)
        returns = total = 0
        for walk in walks:
            for i in range(2, walk.size):
                total += 1
                returns += int(walk[i] == walk[i - 2])
        return returns / max(1, total)

    assert return_rate(0.05) > 2 * return_rate(20.0)


def test_node2vec_p_q_one_statistics_like_deepwalk(graph):
    """p = q = 1 reduces to uniform walks (same distribution family)."""
    biased = node2vec_walks(graph, 100, p=1.0, q=1.0, seed=5)
    uniform = random_walks(graph, 100, seed=5)
    # Same start-vertex discipline and lengths.
    assert [int(w[0]) for w in biased] == [int(w[0]) for w in uniform]
    assert {w.size for w in biased} == {w.size for w in uniform}


def test_node2vec_feeds_deepwalk_trainer(graph, make_ps2):
    walks = node2vec_walks(graph, 40, p=0.25, q=4.0, seed=19)
    result = train_deepwalk(make_ps2(), walks, 40, embedding_dim=8,
                            n_iterations=2, batch_size=80,
                            learning_rate=0.3, seed=19)
    assert result.iterations == 2


# -- LINE ----------------------------------------------------------------------

def test_edge_pairs_cover_all_edges(graph):
    pairs = edge_pairs(graph)
    n_edges = sum(a.size for a in graph)
    assert len(pairs) == n_edges
    for u, v in pairs[:50]:
        assert v in graph[u]


def test_line_loss_decreases(graph, make_ps2):
    result = train_line(make_ps2(), graph, embedding_dim=8, n_iterations=4,
                        batch_size=150, learning_rate=0.05, seed=19)
    assert result.system == "PS2-LINE"
    assert result.final_loss < result.history[0][1]


def test_line_both_realizations_identical(graph, make_ps2):
    kwargs = dict(embedding_dim=8, n_iterations=2, batch_size=100,
                  learning_rate=0.2, seed=19)
    ps2_run = train_line(make_ps2(), graph, server_side=True, **kwargs)
    ps_run = train_line(make_ps2(), graph, server_side=False, **kwargs)
    assert ps_run.system == "PS-LINE"
    for (_ta, la), (_tb, lb) in zip(ps2_run.history, ps_run.history):
        assert la == pytest.approx(lb, rel=1e-9)


def test_line_embeds_edges_closer_than_random(graph, make_ps2):
    from repro.common.rng import RngRegistry
    from repro.ml import embedding_matrix

    result = train_line(make_ps2(), graph, embedding_dim=12, n_iterations=10,
                        batch_size=300, learning_rate=0.05, seed=19)
    vectors = embedding_matrix(result.extras["embeddings"], 40)
    rng = RngRegistry(19).get("line-eval")
    edge_scores = [
        float(np.dot(vectors[u], vectors[int(v)]))
        for u, adj in enumerate(graph) for v in adj
    ]
    random_scores = [
        float(np.dot(vectors[int(rng.integers(40))],
                     vectors[int(rng.integers(40))]))
        for _ in range(200)
    ]
    assert np.mean(edge_scores) > np.mean(random_scores)


def test_train_embedding_pairs_rejects_empty(make_ps2):
    with pytest.raises(ValueError):
        train_embedding_pairs(make_ps2(), [], 10)
