"""LR/SVM trainer tests: convergence, options, statistical parity."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.data import sparse_classification
from repro.ml.linear import train_linear_ps2
from repro.ml.lr import accuracy, evaluate_logistic_loss, \
    train_logistic_regression
from repro.ml.optim import Adam, SGD
from repro.ml.svm import hinge_accuracy, train_svm


@pytest.fixture(scope="module")
def small_data():
    rows, true_w = sparse_classification(400, 300, 12, seed=21)
    return rows, true_w


def test_lr_loss_decreases(make_ps2, small_data):
    rows, _ = small_data
    result = train_logistic_regression(
        make_ps2(), rows, 300, optimizer=Adam(learning_rate=0.2),
        n_iterations=25, batch_fraction=0.5, seed=21,
    )
    assert result.history[0][1] == pytest.approx(np.log(2), abs=1e-6)
    assert result.final_loss < 0.5 * result.history[0][1]


def test_lr_learns_signal(make_ps2, small_data):
    rows, _ = small_data
    result = train_logistic_regression(
        make_ps2(), rows, 300, optimizer=Adam(learning_rate=0.2),
        n_iterations=40, batch_fraction=0.5, seed=21,
    )
    weights = result.extras["weight"].materialize()
    assert accuracy(rows, weights) > 0.75
    assert evaluate_logistic_loss(rows, weights) < 0.55


def test_lr_history_time_monotone(make_ps2, small_data):
    rows, _ = small_data
    result = train_logistic_regression(
        make_ps2(), rows, 300, optimizer="sgd", n_iterations=6,
        batch_fraction=0.3, seed=21,
    )
    times = [t for t, _l in result.history]
    assert times == sorted(times)
    assert result.iterations == 6
    assert result.elapsed >= times[-1]


def test_lr_target_loss_early_stop(make_ps2, small_data):
    rows, _ = small_data
    result = train_logistic_regression(
        make_ps2(), rows, 300, optimizer=Adam(learning_rate=0.2),
        n_iterations=100, batch_fraction=0.5, seed=21, target_loss=0.5,
    )
    assert result.iterations < 100
    assert result.final_loss <= 0.5
    assert result.time_to(0.5) is not None


def test_lr_checkpoint_every(make_ps2, small_data):
    rows, _ = small_data
    ctx = make_ps2()
    train_logistic_regression(
        ctx, rows, 300, optimizer="sgd", n_iterations=6,
        batch_fraction=0.3, seed=21, checkpoint_every=2,
    )
    assert ctx.master.checkpoints.checkpoints_taken > 0


def test_unknown_loss_rejected(make_ps2, small_data):
    rows, _ = small_data
    with pytest.raises(ConfigError):
        train_linear_ps2(make_ps2(), rows, 300, loss="poisson")


def test_optimizer_by_name(make_ps2, small_data):
    rows, _ = small_data
    result = train_logistic_regression(
        make_ps2(), rows, 300, optimizer="adagrad", n_iterations=3,
        batch_fraction=0.3, seed=21,
    )
    assert result.extras["optimizer"].name == "adagrad"


def test_svm_loss_decreases(make_ps2, small_data):
    rows, _ = small_data
    result = train_svm(
        make_ps2(), rows, 300, optimizer=SGD(learning_rate=0.05),
        n_iterations=30, batch_fraction=0.5, seed=21,
    )
    assert result.final_loss < result.history[0][1]
    weights = result.extras["weight"].materialize()
    assert hinge_accuracy(rows, weights) > 0.7


def test_lbfgs_full_batch_lr(make_ps2, small_data):
    rows, _ = small_data
    result = train_logistic_regression(
        make_ps2(), rows, 300, optimizer="lbfgs", n_iterations=12,
        batch_fraction=1.0, seed=21,
    )
    assert result.final_loss < 0.5


def test_identical_seeds_identical_runs(make_ps2, small_data):
    rows, _ = small_data

    def run():
        return train_logistic_regression(
            make_ps2(), rows, 300, optimizer="sgd", n_iterations=5,
            batch_fraction=0.3, seed=4,
        )

    a, b = run(), run()
    assert a.history == b.history


def test_different_server_counts_same_statistics(make_ps2, small_data):
    """Model math must not depend on the deployment shape."""
    rows, _ = small_data
    a = train_logistic_regression(
        make_ps2(n_servers=2), rows, 300, optimizer="sgd",
        n_iterations=5, batch_fraction=0.3, seed=4,
    )
    b = train_logistic_regression(
        make_ps2(n_servers=7), rows, 300, optimizer="sgd",
        n_iterations=5, batch_fraction=0.3, seed=4,
    )
    for (_ta, la), (_tb, lb) in zip(a.history, b.history):
        assert la == pytest.approx(lb, rel=1e-9)


def test_train_result_helpers():
    from repro.ml.results import TrainResult, speedup

    r = TrainResult(system="x", workload="y")
    assert r.final_loss is None
    assert r.best_loss() is None
    r.record(1.0, 0.9)
    r.record(2.0, 0.4)
    assert r.time_to(0.5) == 2.0
    assert r.time_to(0.1) is None
    assert r.best_loss() == 0.4

    s = TrainResult(system="s", workload="y")
    s.record(4.0, 0.4)
    assert speedup(s, r, 0.5) == pytest.approx(2.0)
    assert speedup(r, s, 0.01) is None
