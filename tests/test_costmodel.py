"""Cost-model tests: regime selection, wire pricing, the replication gate.

The acceptance contract for the self-tuning codec layer:

- the *cost model*, not a hand-set knob, chooses compression per message
  regime — byte-dominated (slow-NIC) runs compress, latency-dominated
  (fast-NIC) runs stay identity and bit-identical to ``wire_codec="off"``;
- encoded messages are priced at their honest encoded size;
- decisions are visible in the obs report's transport table;
- the same model gates hot-key replication against migration bytes.
"""

import numpy as np

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, NetworkSpec, NodeSpec
from repro.obs.report import transport_table
from repro.ps.client import PSClient
from repro.ps.master import PSMaster

#: Byte-dominated hardware: 100 Mbit/s NICs at 10 us latency — a 512-byte
#: payload costs ~41 us to serialize, >> one latency.
SLOW = dict(node=NodeSpec(nic_bandwidth=1.25e7),
            network=NetworkSpec(latency=1e-5, bandwidth=1.25e7))


def _rig(wire_codec, n_servers=1, slow=True, **kw):
    specs = dict(SLOW) if slow else {}
    config = ClusterConfig(n_executors=1, n_servers=n_servers, seed=3,
                           wire_codec=wire_codec, **specs, **kw)
    cluster = Cluster(config)
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    return cluster, master, client


# -- regime selection ---------------------------------------------------------


def test_slow_nic_auto_compresses():
    cluster, master, client = _rig("auto")
    m = master.create_matrix(64, n_rows=1)  # 512-byte payloads: r ~ 4.1
    client.push_add(m, 0, np.linspace(-1.0, 1.0, 64))
    client.pull_row(m, 0)
    decisions = cluster.metrics.codec_decisions
    assert decisions[("push", "int8")] == 1
    assert decisions[("pull", "int8")] == 1
    assert sum(cluster.metrics.codec_bytes_saved.values()) > 0


def test_slow_nic_auto_mid_size_picks_fp16():
    cluster, master, client = _rig("auto")
    m = master.create_matrix(32, n_rows=1)  # 256-byte payloads: r ~ 2
    client.push_add(m, 0, np.linspace(-1.0, 1.0, 32))
    assert cluster.metrics.codec_decisions[("push", "fp16")] == 1


def test_slow_nic_auto_huge_dense_add_picks_topk():
    cluster, master, client = _rig("auto")
    m = master.create_matrix(256, n_rows=1)  # 2048-byte payloads: r ~ 16
    client.push_add(m, 0, np.linspace(-1.0, 1.0, 256))
    client.pull_row(m, 0)
    decisions = cluster.metrics.codec_decisions
    # Top tier: sparsify the gradient push; pulls cap at int8 (responses
    # must be priced from the request alone, so never top-k).
    assert decisions[("push", "topk")] == 1
    assert decisions[("pull", "int8")] == 1


def test_send_backlog_escalates_one_tier():
    cluster, master, client = _rig("auto")
    m = master.create_matrix(32, n_rows=1)  # 256 B: fp16 when unloaded
    # Warm the routing metadata first: the layout fetch is itself an RPC
    # that would drain the client's clock past any pre-loaded backlog.
    client.push_add(m, 0, np.linspace(-1.0, 1.0, 32))
    assert cluster.metrics.codec_decisions[("push", "fp16")] == 1
    # Pile an unrelated megabyte onto the client's send NIC (booked, not
    # delivered): the send horizon is now ~0.08 s ahead of the clock,
    # far past the 50-latency backlog knee — the same payload escalates
    # one tier.
    cluster.network.transfer(client.node_id, cluster.servers[0], 1e6,
                             deliver=False)
    client.push_add(m, 0, np.linspace(-1.0, 1.0, 32))
    assert cluster.metrics.codec_decisions[("push", "int8")] == 1


def test_fast_nic_auto_stays_identity_and_bit_identical():
    """Latency-dominated regime: every decision is identity, and the run
    is bit-identical to wire_codec="off" — bytes, values, makespan."""
    runs = {}
    for codec in ("off", "auto"):
        cluster, master, client = _rig(codec, slow=False)
        m = master.create_matrix(64, n_rows=1)
        client.push_add(m, 0, np.linspace(-1.0, 1.0, 64))
        values = client.pull_row(m, 0)
        runs[codec] = (values, cluster.metrics.total_bytes(),
                       cluster.clock.global_time(), cluster.metrics)
    off, auto = runs["off"], runs["auto"]
    assert np.array_equal(auto[0], off[0])
    assert auto[1] == off[1]
    assert auto[2] == off[2]
    # The model ran and deliberately chose identity everywhere.
    decisions = auto[3].codec_decisions
    assert decisions and all(codec == "identity" for _t, codec in decisions)
    assert off[3].codec_decisions == {}  # off constructs no model at all


def test_wire_codec_off_constructs_no_costmodel():
    cluster, _master, _client = _rig("off")
    assert cluster.costmodel is None


# -- honest pricing -----------------------------------------------------------


def test_forced_int8_prices_and_quantizes():
    results = {}
    for codec in ("off", "int8"):
        cluster, master, client = _rig(codec)
        m = master.create_matrix(64, n_rows=1)
        exact = np.linspace(-2.0, 2.0, 64)
        client.push_assign(m, 0, exact)
        got = client.pull_row(m, 0)
        results[codec] = (got, cluster.metrics.bytes_for_tag("push:req"),
                          cluster.metrics.bytes_for_tag("pull:resp"))
    exact = np.linspace(-2.0, 2.0, 64)
    got, push_bytes, pull_bytes = results["int8"]
    scale = 2.0 / 127.0
    # Quantized twice (push then pull response): error <= 2 * scale/2.
    assert np.all(np.abs(got - exact) <= scale + 1e-12)
    assert push_bytes < results["off"][1]
    assert pull_bytes < results["off"][2]


def test_forced_topk_sparsifies_dense_adds_with_error_feedback():
    cluster, master, client = _rig("topk")
    m = master.create_matrix(100, n_rows=1)
    rng = np.random.default_rng(5)
    x = rng.normal(size=100)
    client.push_add(m, 0, x)
    got = client.pull_row(m, 0)
    # Only k = ceil(0.1 * 100) = 10 coordinates landed, the largest |x|.
    kept = np.nonzero(got)[0]
    assert len(kept) == 10
    assert np.array_equal(got[kept], x[kept])
    # The dropped mass lives in the stream residual: applied + residual
    # conserves the full gradient.
    codec = cluster.costmodel.codecs["topk"]
    key = (client.node_id, m, 0, 0)
    assert np.allclose(got + codec.residual(key), x)
    # A second push carries the residual forward (error feedback).
    y = rng.normal(size=100)
    client.push_add(m, 0, y)
    got2 = client.pull_row(m, 0)
    assert np.allclose(got2 + codec.residual(key), x + y)
    # Sparse pushes and pulls stay identity under forced topk.
    assert cluster.metrics.codec_decisions[("pull", "identity")] == 2


def test_forced_topk_never_touches_assign_pushes():
    cluster, master, client = _rig("topk")
    m = master.create_matrix(64, n_rows=1)
    exact = np.linspace(-1.0, 1.0, 64)
    client.push_assign(m, 0, exact)  # state, not mass: must stay exact
    assert np.array_equal(client.pull_row(m, 0), exact)
    assert cluster.metrics.codec_decisions[("push", "identity")] == 1


def test_forced_delta_is_lossless_and_shrinks_repeat_assigns():
    cluster, master, client = _rig("delta")
    m = master.create_matrix(256, n_rows=1)
    state = np.linspace(0.0, 1.0, 256)
    client.push_assign(m, 0, state)  # first payload ships dense
    first_bytes = cluster.metrics.bytes_for_tag("push:req")
    state = state.copy()
    state[7] = -1.0  # one changed coordinate
    client.push_assign(m, 0, state)
    second_bytes = cluster.metrics.bytes_for_tag("push:req") - first_bytes
    assert np.array_equal(client.pull_row(m, 0), state)  # lossless
    assert second_bytes < first_bytes / 4
    assert cluster.metrics.codec_decisions[("push", "delta")] == 2


def test_lossy_codecs_drift_is_bounded_not_hidden():
    """fp16 end-to-end: pushed-then-pulled values stay within the codec's
    documented bound of the exact values."""
    cluster, master, client = _rig("fp16")
    m = master.create_matrix(64, n_rows=1)
    exact = np.linspace(-3.0, 3.0, 64)
    client.push_assign(m, 0, exact)
    got = client.pull_row(m, 0)
    bound = np.maximum(2.0 ** -11 * np.abs(exact), 2.0 ** -24)
    assert np.all(np.abs(got - exact) <= 2 * bound + 1e-12)
    assert not np.array_equal(got, exact)  # genuinely quantized


# -- observability ------------------------------------------------------------


def test_decisions_visible_in_transport_table():
    cluster, master, client = _rig("auto")
    m = master.create_matrix(64, n_rows=1)
    client.push_add(m, 0, np.linspace(-1.0, 1.0, 64))
    client.pull_row(m, 0)
    text = transport_table(cluster.metrics)
    assert "codec" in text
    assert "int8" in text
    assert "bytes_saved" in text
    assert "codec wire bytes saved" in text


def test_transport_table_without_costmodel_is_unchanged():
    cluster, master, client = _rig("off")
    m = master.create_matrix(64, n_rows=1)
    client.push_add(m, 0, np.linspace(-1.0, 1.0, 64))
    assert "codec" not in transport_table(cluster.metrics)


def test_codec_counters_snapshot_and_reset():
    cluster, master, client = _rig("int8")
    m = master.create_matrix(64, n_rows=1)
    client.push_add(m, 0, np.ones(64))
    snap = cluster.metrics.snapshot()
    assert snap["codec_decisions"][("push", "int8")] == 1
    assert snap["codec_bytes_saved"][("push", "int8")] > 0
    cluster.metrics.reset()
    assert not cluster.metrics.codec_decisions
    assert not cluster.metrics.codec_bytes_saved


# -- the replication gate -----------------------------------------------------


def test_replication_gate_prices_heat_against_migration():
    cluster, master, _client = _rig("int8", n_servers=2)
    m = master.create_matrix(20, n_rows=4)  # 10-wide shards: migrate 320 B
    costmodel = cluster.costmodel
    # int8 shrinks a 10-value read by 80/18 ~ 4.4x, so the deflated heat
    # must beat 320 migration bytes: threshold ~ 1422 bytes of heat.
    assert not costmodel.replication_worthwhile((m, 0), 1000.0, master)
    assert costmodel.replication_worthwhile((m, 0), 5000.0, master)
    counters = cluster.metrics.counters
    assert counters["codec-replication-vetoed"] == 1
    assert counters["codec-replication-allowed"] == 1


def test_replication_gate_admits_unknown_matrices():
    cluster, master, _client = _rig("int8", n_servers=2)
    assert cluster.costmodel.replication_worthwhile(
        ("no-such-matrix", 0), 1.0, master)


def test_rebalance_consults_the_gate():
    """With a cost model active, promote sweeps only replicate keys whose
    compressed heat beats migration — the unified decision point."""
    config = ClusterConfig(n_executors=2, n_servers=2, seed=3,
                           wire_codec="int8",
                           replication="topk", hot_key_fraction=1.0,
                           replication_factor=1, **SLOW)
    cluster = Cluster(config)
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    m = master.create_matrix(16, n_rows=1)
    client.push_add(m, 0, np.ones(16))
    client.pull_row(m, 0)
    cluster.replication.rebalance()
    counters = cluster.metrics.counters
    # Tiny heat vs full-matrix migration: every candidate is vetoed.
    assert counters["codec-replication-vetoed"] > 0
    assert counters.get("replica-promotions", 0) == 0


# -- interaction with the transport fast paths --------------------------------


def test_costmodel_disables_bulk_and_fused_paths_but_results_match():
    """A cost-model run takes the per-message path; with forced identity
    tiers (fast NIC) its results still match a codec-off run exactly."""
    results = {}
    for codec in ("off", "auto"):
        cluster, master, client = _rig(codec, n_servers=3, slow=False)
        m = master.create_matrix(96, n_rows=2)
        client.push_assign(m, 0, np.linspace(0.0, 1.0, 96))
        client.push_add(m, 0, np.ones(96))
        got = client.pull_row(m, 0)
        results[codec] = (got, cluster.metrics.total_bytes(),
                          cluster.metrics.total_messages())
    assert np.array_equal(results["auto"][0], results["off"][0])
    assert results["auto"][1] == results["off"][1]
    assert results["auto"][2] == results["off"][2]


def test_prepare_is_idempotent_per_message():
    """Retries re-offer the same message; a second prepare must not
    re-encode (stateful codecs would corrupt their stream state)."""
    cluster, master, client = _rig("topk")
    m = master.create_matrix(100, n_rows=1)
    x = np.random.default_rng(7).normal(size=100)
    request = None

    from repro.ps import messages

    request = messages.PushRequest(0, m, 0, x.copy(), mode="add")
    costmodel = cluster.costmodel
    costmodel.prepare(request, client.node_id)
    encoded = request.encoded
    nbytes = request._enc_nbytes
    costmodel.prepare(request, client.node_id)
    assert request.encoded is encoded
    assert request._enc_nbytes == nbytes
    assert cluster.metrics.codec_decisions[("push", "topk")] == 1
