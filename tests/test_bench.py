"""BENCH records: schema, serialization, trajectory, regression gating."""

import json

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.core.context import PS2Context
from repro.obs import bench


def _exercised_context(seed=3, trace=False):
    ctx = PS2Context(config=ClusterConfig(n_executors=2, n_servers=2,
                                          seed=seed))
    if trace:
        ctx.cluster.tracer.enable()
    w = ctx.dense(256, rows=2)
    g = w.derive().fill(0.5)
    w.push(np.arange(256.0))
    w.pull()
    w.dot(g)
    return ctx


def _record(trace=False, name="unit", wall_seconds=2.0):
    clusters = [_exercised_context(trace=trace).cluster,
                _exercised_context(seed=4, trace=trace).cluster]
    return bench.bench_record(name, clusters, params={"iterations": 2},
                              wall_seconds=wall_seconds)


# -- record construction -----------------------------------------------------


def test_record_shape_and_validation():
    record = bench.validate_record(_record())
    assert record["schema"] == bench.SCHEMA
    assert record["params"] == {"iterations": 2}
    assert [c["label"] for c in record["contexts"]] == ["ctx0", "ctx1"]
    for context in record["contexts"]:
        assert context["makespan_s"] > 0
        assert context["total_wire_bytes"] > 0
        assert context["wire_messages"] > 0
        assert context["logical_messages"] >= context["wire_messages"]
        assert context["imbalance_ratio"] >= 1.0
        assert set(context["cache"]) == {"hits", "misses", "hit_rate"}
        assert "pull" in context["latency"]
        assert "critical_path" not in context
    assert record["makespan_s"] == pytest.approx(
        sum(c["makespan_s"] for c in record["contexts"])
    )
    assert record["host"]["wall_seconds"] == 2.0
    assert record["host"]["events_per_second"] == \
        pytest.approx(record["events"] / 2.0)


def test_traced_record_attaches_critical_path():
    record = _record(trace=True)
    for context in record["contexts"]:
        breakdown = context["critical_path"]
        assert breakdown["total"] == pytest.approx(context["makespan_s"])
        assert sum(breakdown["categories"].values()) == \
            pytest.approx(breakdown["total"], rel=1e-9)


def test_validate_rejects_malformed_records():
    good = _record()
    for mutate in (
        lambda r: r.pop("schema"),
        lambda r: r.update(schema="repro-bench/v0"),
        lambda r: r.update(name=""),
        lambda r: r.update(params=[1]),
        lambda r: r.update(makespan_s=-1.0),
        lambda r: r.update(contexts=[]),
        lambda r: r["contexts"][0].pop("imbalance_ratio"),
        lambda r: r["contexts"][0].update(critical_path={"total": 1.0}),
        lambda r: r.update(host={}),
    ):
        record = json.loads(json.dumps(good))
        mutate(record)
        with pytest.raises(ValueError):
            bench.validate_record(record)


# -- serialization ------------------------------------------------------------


def test_write_load_round_trip(tmp_path):
    record = _record()
    path = bench.write_record(record, str(tmp_path))
    assert path.endswith("BENCH_unit.json")
    assert bench.load_record(path) == json.loads(json.dumps(record))


def test_append_trajectory_accumulates_lines(tmp_path):
    path = str(tmp_path / "trajectory.jsonl")
    bench.append_trajectory(_record(name="a"), path)
    bench.append_trajectory(_record(name="b", wall_seconds=None), path)
    with open(path, encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle]
    assert [line["name"] for line in lines] == ["a", "b"]
    assert "events_per_second" in lines[0]
    assert "events_per_second" not in lines[1]
    assert all(set(line) >= {"name", "params", "makespan_s",
                             "total_wire_bytes", "events"}
               for line in lines)


# -- v1 forward compatibility (PR 8: compressed_bytes) ------------------------


def test_new_records_carry_compressed_bytes():
    record = _record()
    for context in record["contexts"]:
        assert context["compressed_bytes"] == 0.0  # no cost model ran


def test_v1_baselines_without_compressed_bytes_still_accepted(tmp_path):
    """Checked-in ``repro-bench/v1`` baselines predate ``compressed_bytes``;
    validate / compare / gate must keep accepting them unchanged."""
    current = _record(name="compat")
    baseline = json.loads(json.dumps(current))
    for context in baseline["contexts"]:
        del context["compressed_bytes"]
    # Old-shape records still validate as v1 ...
    bench.validate_record(baseline)
    # ... compare cleanly against new-shape records in either direction ...
    assert bench.compare_records(current, baseline) == []
    assert bench.compare_records(baseline, current) == []
    # ... and pass a full gate round-trip through disk.
    results = tmp_path / "results"
    baselines = tmp_path / "baselines"
    results.mkdir()
    baselines.mkdir()
    bench.write_record(current, str(results))
    path = baselines / "BENCH_compat.json"
    path.write_text(json.dumps(baseline), encoding="utf-8")
    failures, notes = bench.gate(str(results), str(baselines))
    assert failures == []
    assert notes == []


# -- comparison and gating ----------------------------------------------------


def test_compare_identical_records_is_clean():
    record = _record()
    assert bench.compare_records(record, record) == []


def test_compare_flags_regressions_beyond_tolerance():
    current = _record()
    baseline = json.loads(json.dumps(current))
    baseline["makespan_s"] = current["makespan_s"] / 1.10  # +10% drift
    regressions = bench.compare_records(current, baseline)
    assert regressions and "makespan_s" in regressions[0]
    # a looser explicit tolerance lets the same drift through
    assert bench.compare_records(current, baseline,
                                 tolerances={"makespan_s": 0.2}) == []
    # improvements never fail the gate
    faster = json.loads(json.dumps(current))
    faster["makespan_s"] *= 2.0
    faster["total_wire_bytes"] *= 2.0
    assert bench.compare_records(current, faster) == []


def test_compare_flags_per_context_regressions():
    current = _record()
    baseline = json.loads(json.dumps(current))
    baseline["contexts"][1]["total_wire_bytes"] /= 1.5
    regressions = bench.compare_records(current, baseline)
    assert any("ctx1" in r and "total_wire_bytes" in r for r in regressions)


def test_compare_skips_on_params_mismatch():
    current = _record()
    baseline = json.loads(json.dumps(current))
    baseline["params"] = {"iterations": 8}
    assert bench.compare_records(current, baseline) is None


def test_gate_over_directories(tmp_path):
    results = tmp_path / "results"
    baselines = tmp_path / "baselines"
    results.mkdir()
    baselines.mkdir()

    # no records at all: the gate fails loudly instead of passing vacuously
    failures, _notes = bench.gate(str(results), str(baselines))
    assert failures

    record = _record(name="stable")
    bench.write_record(record, str(results))
    bench.write_record(record, str(baselines))
    newcomer = _record(name="newcomer")
    bench.write_record(newcomer, str(results))
    failures, notes = bench.gate(str(results), str(baselines))
    assert failures == []
    assert any("newcomer" in note and "no checked-in baseline" in note
               for note in notes)

    # regress the checked-in baseline's byte volume: the gate trips
    slim = json.loads(json.dumps(record))
    slim["total_wire_bytes"] /= 1.5
    for context in slim["contexts"]:
        context["total_wire_bytes"] /= 1.5
    bench.write_record(slim, str(baselines))
    failures, _notes = bench.gate(str(results), str(baselines))
    assert any("total_wire_bytes" in f for f in failures)
