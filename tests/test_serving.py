"""The serving tier: traffic, SLO tracking, autoscaling, scenarios, CLI.

Property tests (Hypothesis) pin the two contracts the subsystem leans on:

1. a :class:`TrafficGenerator` stream is a pure function of its seed —
   same seed, bit-identical stream, every time;
2. the Zipf exponent monotonically controls skew: head mass is strictly
   increasing in the exponent (checked on the analytic pmf, no sampling
   noise).

The rest covers the SLO tracker's windowed/cumulative views, the
autoscaler's signals/cooldown/bounds, scenario resolution, the open-loop
driver (including seeded determinism of a full elastic run), the report
section and the ``python -m repro serve`` command.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.common.errors import ConfigError
from repro.config import ClusterConfig, ElasticitySpec
from repro.core.context import PS2Context
from repro.experiments.runner import make_context
from repro.obs.report import render_report
from repro.serving import (Autoscaler, SCENARIOS, SLOTracker,
                           TrafficGenerator, run_serving)
from repro.serving.scenario import get_scenario
from repro.serving.traffic import MIN_RATE_FACTOR


# -- traffic: determinism (property) ------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_items=st.integers(min_value=1, max_value=64),
    exponent=st.floats(min_value=0.0, max_value=3.0,
                       allow_nan=False, allow_infinity=False),
    profile=st.sampled_from(["flat", "step", "diurnal"]),
)
@settings(max_examples=40, deadline=None)
def test_same_seed_same_stream(seed, n_items, exponent, profile):
    def build():
        return TrafficGenerator(
            seed=seed, n_items=n_items, base_rate=200.0,
            zipf_exponent=exponent, keys_per_request=3, profile=profile,
        ).generate(0.25)

    first, second = build(), build()
    assert first == second  # bit-identical: times, kinds, users and ids
    times = [r.time for r in first]
    assert times == sorted(times)
    assert all(0.0 <= t < 0.25 for t in times)
    assert all(len(r.ids) == 3 for r in first)
    assert all(0 <= i < n_items for r in first for i in r.ids)


@given(seeds=st.tuples(st.integers(min_value=0, max_value=10**6),
                       st.integers(min_value=0, max_value=10**6)))
@settings(max_examples=20, deadline=None)
def test_different_seeds_usually_differ(seeds):
    a, b = seeds
    streams = [
        TrafficGenerator(seed=s, n_items=32, base_rate=500.0).generate(0.2)
        for s in (a, b)
    ]
    if a == b:
        assert streams[0] == streams[1]
    elif streams[0] and streams[1]:
        # Arrival times come from a continuous distribution: two distinct
        # seeds colliding on the full time vector would be an RNG bug.
        assert [r.time for r in streams[0]] != [r.time for r in streams[1]]


# -- traffic: Zipf skew is monotone in the exponent (property) ----------------


@given(
    n_items=st.integers(min_value=2, max_value=512),
    low=st.floats(min_value=0.0, max_value=2.5,
                  allow_nan=False, allow_infinity=False),
    bump=st.floats(min_value=0.05, max_value=1.5,
                   allow_nan=False, allow_infinity=False),
)
@settings(max_examples=60, deadline=None)
def test_zipf_head_mass_increases_with_exponent(n_items, low, bump):
    flat = TrafficGenerator.zipf_probabilities(n_items, low)
    skewed = TrafficGenerator.zipf_probabilities(n_items, low + bump)
    assert flat.shape == skewed.shape == (n_items,)
    assert np.isclose(flat.sum(), 1.0) and np.isclose(skewed.sum(), 1.0)
    # More exponent -> strictly more mass on the head item ...
    assert skewed[0] > flat[0]
    # ... and strictly less on the tail item.
    assert skewed[-1] < flat[-1]
    # Each pmf is itself non-increasing in rank.
    assert np.all(np.diff(flat) <= 0) and np.all(np.diff(skewed) <= 0)


def test_zipf_exponent_zero_is_uniform():
    p = TrafficGenerator.zipf_probabilities(8, 0.0)
    assert np.allclose(p, 1.0 / 8.0)


# -- traffic: profiles and validation -----------------------------------------


def test_step_profile_rate_factor():
    gen = TrafficGenerator(seed=0, n_items=8, base_rate=100.0,
                           profile="step", step_at=1.0, step_factor=4.0)
    assert gen.rate_factor(0.5) == 1.0
    assert gen.rate_factor(1.0) == 4.0
    assert gen.rate_at(2.0) == 400.0


def test_diurnal_profile_is_floored():
    gen = TrafficGenerator(seed=0, n_items=8, base_rate=100.0,
                           profile="diurnal", period=1.0, amplitude=5.0)
    # The trough would be negative; the floor keeps the process alive.
    assert gen.rate_factor(0.75) == MIN_RATE_FACTOR
    assert gen.rate_factor(0.25) == pytest.approx(6.0)


def test_step_stream_is_denser_after_step():
    gen = TrafficGenerator(seed=3, n_items=8, base_rate=400.0,
                           profile="step", step_at=0.5, step_factor=4.0)
    stream = gen.generate(1.0)
    before = sum(1 for r in stream if r.time < 0.5)
    after = sum(1 for r in stream if r.time >= 0.5)
    assert after > 2 * before


@pytest.mark.parametrize("kwargs", [
    dict(n_items=0),
    dict(base_rate=0.0),
    dict(read_fraction=1.5),
    dict(keys_per_request=0),
    dict(profile="bogus"),
])
def test_traffic_validation(kwargs):
    defaults = dict(seed=0, n_items=8, base_rate=100.0)
    defaults.update(kwargs)
    with pytest.raises(ConfigError):
        TrafficGenerator(**defaults)


def test_keys_exceeding_catalogue_draw_with_replacement():
    gen = TrafficGenerator(seed=0, n_items=2, base_rate=200.0,
                           keys_per_request=5)
    stream = gen.generate(0.2)
    assert stream and all(len(r.ids) == 5 for r in stream)


# -- SLO tracker --------------------------------------------------------------


def _windowed_cluster(window=0.5):
    from repro.cluster.cluster import Cluster

    return Cluster(ClusterConfig(n_executors=2, n_servers=2, seed=42,
                                 timeseries_window=window))


def test_slo_tracker_counts_and_summary(cluster):
    slo = SLOTracker(cluster, slo_target=1e-3)
    slo.observe("read", 5e-4)
    slo.observe("read", 2e-3)  # violation
    slo.observe("update", 5e-4)
    assert slo.requests == {"read": 2, "update": 1}
    assert slo.violations == {"read": 1}
    assert cluster.metrics.counters["slo-violations"] == 1
    assert slo.violation_rate("read") == 0.5
    assert slo.violation_rate() == pytest.approx(1.0 / 3.0)
    summary = slo.summary()
    assert summary["read"]["requests"] == 2
    assert summary["read"]["violations"] == 1
    assert summary["read"]["p99"] >= summary["read"]["p50"] > 0.0
    assert summary["update"]["violations"] == 0


def test_slo_tracker_zero_target_never_violates(cluster):
    slo = SLOTracker(cluster)
    slo.observe("read", 100.0)
    assert slo.violations == {}
    assert "slo-violations" not in cluster.metrics.counters


def test_slo_windowed_reads_last_closed_window():
    cluster = _windowed_cluster(window=0.5)
    slo = SLOTracker(cluster, slo_target=1e-3)
    assert slo.windowed("read") == 0.0  # nothing closed yet
    slo.observe("read", 2e-3)
    cluster.clock.set_at_least(cluster.executors[0], 0.6)
    cluster.timeseries.maybe_flush()
    assert slo.windowed("read", q="p99") == pytest.approx(2e-3)
    assert slo.windowed("update") == 0.0  # silent class: no signal
    points = slo.series("read", q="p99")
    assert points and points[0][1] == pytest.approx(2e-3)


def test_slo_windowed_without_sampler_is_no_signal(cluster):
    slo = SLOTracker(cluster, slo_target=1e-3)
    slo.observe("read", 2e-3)
    assert slo.windowed("read") == 0.0
    assert slo.series("read") == []


# -- autoscaler ---------------------------------------------------------------


def _elastic_ctx(spec, window=0.0, n=2):
    config = ClusterConfig(n_executors=n, n_servers=n, seed=42,
                           timeseries_window=window, elasticity=spec)
    return PS2Context(config=config)


def test_autoscaler_off_mode_never_acts():
    ctx = _elastic_ctx(ElasticitySpec())
    scaler = Autoscaler(ctx)
    assert scaler.maybe_scale() is None
    assert scaler.events == []


def test_autoscaler_scales_up_on_backlog():
    spec = ElasticitySpec(mode="auto", min_servers=2, max_servers=4,
                          min_workers=2, max_workers=4,
                          scale_up_backlog=1e-3, cooldown=0.0)
    ctx = _elastic_ctx(spec)
    scaler = Autoscaler(ctx, spec)
    # Saturate one server's NIC, then measure against the arrival
    # frontier (t=0): the receive horizon extends far past it even
    # though the completion clocks have already caught up.
    server = ctx.master.servers[0].node_id
    ctx.cluster.network.transfer("driver", server, 10**7, tag="flood")
    assert scaler.backlog_seconds(0.0) > 1e-3
    assert scaler.backlog_seconds() == 0.0  # vs the global clock: drained
    event = scaler.maybe_scale(0.0)
    assert event is not None and event["direction"] == "up"
    assert event["reason"] == "backlog"
    assert "server+1" in event["actions"] and "worker+1" in event["actions"]
    assert ctx.master.n_servers == 3
    assert len(ctx.cluster.executors) == 3
    assert ctx.metrics.counters["autoscale-up"] == 1


def test_autoscaler_scales_up_on_windowed_slo_breach():
    spec = ElasticitySpec(mode="auto", min_servers=2, max_servers=4,
                          min_workers=2, max_workers=4,
                          slo_target=1e-3, cooldown=0.0,
                          scale_up_backlog=1e9)  # backlog signal muted
    ctx = _elastic_ctx(spec, window=0.5)
    slo = SLOTracker(ctx.cluster, slo_target=1e-3)
    scaler = Autoscaler(ctx, spec, slo=slo)
    slo.observe("read", 5e-3)  # breach, but the window is still open
    ctx.cluster.clock.set_at_least(ctx.cluster.executors[0], 0.6)
    ctx.cluster.timeseries.maybe_flush()
    event = scaler.maybe_scale()
    assert event is not None and event["reason"] == "slo"
    assert event["p99"] == pytest.approx(5e-3)


def test_autoscaler_scales_down_with_hysteresis():
    spec = ElasticitySpec(mode="auto", min_servers=1, max_servers=4,
                          min_workers=1, max_workers=4,
                          scale_down_backlog=1e-4, cooldown=0.0)
    ctx = _elastic_ctx(spec)
    scaler = Autoscaler(ctx, spec)
    event = scaler.maybe_scale()  # idle cluster: drain
    assert event is not None and event["direction"] == "down"
    assert event["reason"] == "drain"
    assert ctx.master.n_servers == 1
    assert len(ctx.cluster.executors) == 1
    assert ctx.metrics.counters["autoscale-down"] == 1
    # At the floor, draining again is a no-op (no phantom events).
    assert scaler.maybe_scale() is None
    assert len(scaler.events) == 1


def test_autoscaler_respects_bounds():
    spec = ElasticitySpec(mode="auto", min_servers=2, max_servers=2,
                          min_workers=2, max_workers=2,
                          scale_up_backlog=1e-6, scale_down_backlog=0.0,
                          cooldown=0.0)
    ctx = _elastic_ctx(spec)
    scaler = Autoscaler(ctx, spec)
    server = ctx.master.servers[0].node_id
    ctx.cluster.network.transfer("driver", server, 10**7, tag="flood")
    # Both tiers pinned: the breach cannot act, and no event is logged.
    assert scaler.maybe_scale(0.0) is None
    assert scaler.events == []
    assert ctx.master.n_servers == 2


def test_autoscaler_cooldown_blocks_second_action():
    spec = ElasticitySpec(mode="auto", min_servers=1, max_servers=8,
                          min_workers=1, max_workers=8,
                          scale_down_backlog=1e-4, cooldown=0.5)
    ctx = _elastic_ctx(spec, n=4)
    scaler = Autoscaler(ctx, spec)
    ctx.cluster.clock.set_at_least(ctx.cluster.executors[0], 1.0)
    assert scaler.maybe_scale() is not None
    assert scaler.maybe_scale() is None  # inside the cooldown window
    ctx.cluster.clock.set_at_least(ctx.cluster.executors[0], 2.0)
    assert scaler.maybe_scale() is not None
    assert len(scaler.events) == 2


# -- scenarios and the driver -------------------------------------------------


def test_scenario_registry_and_unknown():
    assert set(SCENARIOS) == {"smoke", "step", "diurnal"}
    assert get_scenario("smoke").profile == "flat"
    with pytest.raises(ConfigError):
        get_scenario("black-friday")


def test_run_serving_smoke_static():
    ctx = make_context(n_executors=2, n_servers=2, seed=3,
                       timeseries_window=0.25)
    result = run_serving(ctx, "smoke")
    assert result["scenario"] == "smoke"
    assert result["requests"] > 0
    assert result["events"] == []  # elasticity off: no autoscaler at all
    assert result["n_servers"] == 2 and result["n_workers"] == 2
    # Lazy creation engaged and the master registry agrees with the
    # server-side creation counter (create-once across all workers).
    assert 0 < result["created_rows"] <= 128
    assert result["lazy_creates"] == result["created_rows"]
    assert result["makespan"] > 0.0
    assert ctx.master.info(result["table"]).lazy
    # The SLO tracker is installed where the report can find it.
    assert ctx.cluster.slo is not None
    assert ctx.cluster.slo.requests["read"] > 0


def test_run_serving_elastic_builds_autoscaler_and_report():
    ctx = make_context(n_executors=2, n_servers=2, seed=3,
                       timeseries_window=0.25, elasticity="auto")
    result = run_serving(ctx, "smoke")
    # The default-bounded spec drains the idle smoke workload down.
    assert any(e["direction"] == "down" for e in result["events"])
    assert result["n_servers"] < 2 or result["n_workers"] < 2
    text = render_report(ctx.cluster)
    assert "serving tier" in text
    assert "serve:read" in text or "read" in text
    assert "lazy rows created=%d" % result["created_rows"] in text


def test_run_serving_is_deterministic_under_seed():
    def run():
        ctx = make_context(n_executors=2, n_servers=2, seed=11,
                           timeseries_window=0.25, elasticity="auto")
        return run_serving(ctx, "smoke")

    first, second = run(), run()
    assert first == second


def test_run_serving_works_without_timeseries():
    # window=0 disables the sampler: the driver and the SLO tracker must
    # degrade gracefully (no windowed signal, cumulative stats intact).
    ctx = make_context(n_executors=2, n_servers=2, seed=5)
    result = run_serving(ctx, "smoke")
    assert result["requests"] > 0
    assert ctx.cluster.timeseries is None
    assert ctx.cluster.slo.windowed("read") == 0.0
    assert ctx.cluster.slo.summary()["read"]["p99"] > 0.0


# -- CLI ----------------------------------------------------------------------


def test_cli_serve_smoke(capsys):
    assert main(["serve", "smoke", "--workers", "2", "--servers", "2",
                 "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "serving tier" in out
    assert "requests served:" in out
    assert "embedding rows created lazily:" in out
    assert "final topology: 2 servers / 2 workers" in out


def test_cli_serve_elastic(capsys):
    assert main(["serve", "smoke", "--workers", "2", "--servers", "2",
                 "--seed", "3", "--elastic"]) == 0
    out = capsys.readouterr().out
    assert "(elastic)" in out
    assert "scale" in out  # at least the drain event line


def test_cli_serve_unknown_scenario(capsys):
    assert main(["serve", "black-friday"]) == 1
    assert "unknown scenario" in capsys.readouterr().out
