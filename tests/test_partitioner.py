"""Unit + property tests for matrix layouts (column / row partitioning)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.ps.partitioner import ColumnLayout, RowLayout


def test_column_ranges_cover_dim_exactly():
    layout = ColumnLayout(10, 3)
    shards = layout.shards_for_row(0)
    covered = sorted((start, stop) for _s, start, stop in shards)
    assert covered[0][0] == 0
    assert covered[-1][1] == 10
    for (_, a_stop), (b_start, _) in zip(covered, covered[1:]):
        assert a_stop == b_start


def test_column_sizes_near_equal():
    layout = ColumnLayout(11, 4)
    sizes = [stop - start for _s, start, stop in layout.shards_for_row(0)]
    assert max(sizes) - min(sizes) <= 1
    assert sum(sizes) == 11


def test_column_more_servers_than_dim():
    layout = ColumnLayout(2, 5)
    shards = layout.shards_for_row(0)
    assert len(shards) == 2  # empty ranges omitted
    assert sum(stop - start for _s, start, stop in shards) == 2


def test_server_of_matches_shards():
    layout = ColumnLayout(100, 7, rotation=3)
    for server_index, start, stop in layout.shards_for_row(0):
        for col in (start, stop - 1):
            assert layout.server_of(col) == server_index


def test_server_of_out_of_range():
    layout = ColumnLayout(10, 2)
    with pytest.raises(ConfigError):
        layout.server_of(10)
    with pytest.raises(ConfigError):
        layout.server_of(-1)


def test_rotation_changes_placement_not_ranges():
    a = ColumnLayout(100, 4, rotation=0)
    b = ColumnLayout(100, 4, rotation=1)
    ranges_a = sorted((s, e) for _x, s, e in a.shards_for_row(0))
    ranges_b = sorted((s, e) for _x, s, e in b.shards_for_row(0))
    assert ranges_a == ranges_b
    assert a.server_of(0) != b.server_of(0)


def test_rotation_wraps():
    assert ColumnLayout(10, 4, rotation=5).rotation == 1


def test_same_layout_requires_equal_rotation():
    a = ColumnLayout(50, 4, rotation=0)
    b = ColumnLayout(50, 4, rotation=0)
    c = ColumnLayout(50, 4, rotation=2)
    assert a.same_layout(b)
    assert a == b
    assert not a.same_layout(c)
    assert hash(a) == hash(b)


def test_layout_inequality_cases():
    a = ColumnLayout(50, 4)
    assert not a.same_layout(ColumnLayout(51, 4))
    assert not a.same_layout(ColumnLayout(50, 5))
    assert not a.same_layout(RowLayout(50, 4))


def test_split_indices_groups_by_owner():
    layout = ColumnLayout(100, 4, rotation=2)
    indices = np.array([0, 30, 60, 99, 25, 26])
    groups = layout.split_indices(indices)
    for server_index, group in groups.items():
        for col in group:
            assert layout.server_of(int(col)) == server_index
    total = np.concatenate(list(groups.values()))
    assert sorted(total.tolist()) == sorted(indices.tolist())


def test_split_indices_empty():
    assert ColumnLayout(10, 2).split_indices([]) == {}


def test_validation_errors():
    with pytest.raises(ConfigError):
        ColumnLayout(0, 3)
    with pytest.raises(ConfigError):
        ColumnLayout(10, 0)
    with pytest.raises(ConfigError):
        RowLayout(0, 2)
    with pytest.raises(ConfigError):
        RowLayout(5, 0)


def test_row_layout_single_server_per_row():
    layout = RowLayout(64, 3)
    assert layout.shards_for_row(0) == [(0, 0, 64)]
    assert layout.shards_for_row(4) == [(1, 0, 64)]


def test_row_layout_split_indices():
    layout = RowLayout(64, 3)
    groups = layout.split_indices_for_row(2, np.array([5, 1, 60]))
    assert list(groups) == [2]
    assert groups[2].tolist() == [1, 5, 60]


def test_row_layout_equality():
    assert RowLayout(10, 2) == RowLayout(10, 2)
    assert RowLayout(10, 2) != RowLayout(10, 3)
    assert hash(RowLayout(10, 2)) == hash(RowLayout(10, 2))


@given(
    dim=st.integers(min_value=1, max_value=500),
    n_servers=st.integers(min_value=1, max_value=20),
    rotation=st.integers(min_value=0, max_value=40),
)
@settings(max_examples=80, deadline=None)
def test_property_column_partition_is_exact(dim, n_servers, rotation):
    """Shards are disjoint, cover [0, dim), and server_of agrees."""
    layout = ColumnLayout(dim, n_servers, rotation=rotation)
    shards = layout.shards_for_row(0)
    covered = np.zeros(dim, dtype=int)
    for server_index, start, stop in shards:
        covered[start:stop] += 1
        assert 0 <= server_index < n_servers
    assert (covered == 1).all()


@given(
    dim=st.integers(min_value=2, max_value=300),
    n_servers=st.integers(min_value=1, max_value=10),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_property_split_indices_is_a_partition(dim, n_servers, data):
    indices = data.draw(
        st.lists(st.integers(min_value=0, max_value=dim - 1),
                 min_size=0, max_size=30, unique=True)
    )
    layout = ColumnLayout(dim, n_servers, rotation=data.draw(
        st.integers(min_value=0, max_value=5)))
    groups = layout.split_indices(np.array(indices, dtype=np.int64))
    recovered = sorted(
        int(i) for group in groups.values() for i in group
    )
    assert recovered == sorted(indices)
