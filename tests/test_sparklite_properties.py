"""Property-based tests on the sparklite engine's semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, FailureConfig
from repro.sparklite.context import SparkContext


def make_sc(n_executors=3, task_failure_prob=0.0, seed=0):
    config = ClusterConfig(
        n_executors=n_executors,
        n_servers=1,
        seed=seed,
        failures=FailureConfig(task_failure_prob=task_failure_prob),
    )
    return SparkContext(Cluster(config))


@given(
    data=st.lists(st.integers(min_value=-1000, max_value=1000),
                  min_size=0, max_size=60),
    n_partitions=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_collect_preserves_multiset(data, n_partitions):
    sc = make_sc()
    assert sorted(sc.parallelize(data, n_partitions=n_partitions).collect()) \
        == sorted(data)


@given(
    data=st.lists(st.integers(min_value=-100, max_value=100),
                  min_size=1, max_size=40),
    n_partitions=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=50, deadline=None)
def test_aggregate_equals_python_fold(data, n_partitions):
    sc = make_sc()
    rdd = sc.parallelize(data, n_partitions=n_partitions)
    got = rdd.aggregate(0, lambda a, x: a + x * x, lambda a, b: a + b)
    assert got == sum(x * x for x in data)


@given(
    data=st.lists(st.integers(min_value=0, max_value=50),
                  min_size=1, max_size=40),
    depth=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_tree_aggregate_equals_aggregate(data, depth):
    sc = make_sc()
    rdd = sc.parallelize(data, n_partitions=4)
    plain = rdd.aggregate(0, lambda a, x: a + x, lambda a, b: a + b)
    tree = rdd.tree_aggregate(0, lambda a, x: a + x, lambda a, b: a + b,
                              depth=depth)
    assert plain == tree


@given(
    fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_sample_is_subset(fraction, seed):
    sc = make_sc()
    data = list(range(80))
    sampled = sc.parallelize(data).sample(fraction, seed=seed).collect()
    assert set(sampled) <= set(data)
    assert len(sampled) == len(set(sampled))


@given(
    prob=st.sampled_from([0.0, 0.1, 0.3, 0.6]),
    seed=st.integers(min_value=0, max_value=50),
    data=st.lists(st.integers(min_value=-50, max_value=50),
                  min_size=1, max_size=30),
)
@settings(max_examples=40, deadline=None)
def test_results_invariant_under_task_failures(prob, seed, data):
    """Injected task failures never change an action's result — only time."""
    clean = make_sc(task_failure_prob=0.0, seed=seed)
    flaky = make_sc(task_failure_prob=prob, seed=seed)
    assert clean.parallelize(data).sum() == flaky.parallelize(data).sum()


@given(
    prob=st.sampled_from([0.2, 0.5]),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=20, deadline=None)
def test_deferred_effects_invariant_under_failures(prob, seed):
    """Deferred (exactly-once) side effects match the failure-free run."""

    def run(failure_prob):
        sc = make_sc(task_failure_prob=failure_prob, seed=seed)
        sink = []

        def fn(ctx, iterator):
            items = list(iterator)
            ctx.defer(lambda: sink.extend(items))
            return [len(items)]

        sc.parallelize(range(24)).map_partitions_with_context(fn).collect()
        return sorted(sink)

    assert run(0.0) == run(prob) == list(range(24))
