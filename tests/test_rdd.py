"""Unit tests for sparklite RDD transformations and actions."""

import numpy as np
import pytest

from repro.common.errors import SparkliteError
from repro.sparklite.context import SparkContext
from repro.sparklite.task import with_context


@pytest.fixture
def sc(cluster):
    return SparkContext(cluster)


def test_parallelize_collect_round_trip(sc):
    data = list(range(37))
    assert sorted(sc.parallelize(data).collect()) == data


def test_partition_sizes_balanced(sc):
    rdd = sc.parallelize(range(10), n_partitions=4)
    sizes = rdd.partition_sizes()
    assert sum(sizes) == 10
    assert max(sizes) - min(sizes) <= 1


def test_default_partitions_match_executors(sc):
    rdd = sc.parallelize(range(8))
    assert rdd.get_num_partitions() == sc.n_executors


def test_parallelize_rejects_zero_partitions(sc):
    with pytest.raises(SparkliteError):
        sc.parallelize([1], n_partitions=0)


def test_map(sc):
    assert sorted(sc.parallelize([1, 2, 3]).map(lambda x: x * 2).collect()) \
        == [2, 4, 6]


def test_flat_map(sc):
    result = sc.parallelize([1, 2]).flat_map(lambda x: [x] * x).collect()
    assert sorted(result) == [1, 2, 2]


def test_filter(sc):
    result = sc.parallelize(range(10)).filter(lambda x: x % 2 == 0).collect()
    assert sorted(result) == [0, 2, 4, 6, 8]


def test_chained_transformations(sc):
    result = (
        sc.parallelize(range(20))
        .map(lambda x: x + 1)
        .filter(lambda x: x % 3 == 0)
        .map(lambda x: x * 10)
        .collect()
    )
    assert sorted(result) == [30, 60, 90, 120, 150, 180]


def test_count(sc):
    assert sc.parallelize(range(55)).count() == 55


def test_sum(sc):
    assert sc.parallelize(range(10)).sum() == 45.0


def test_sum_empty(sc):
    assert sc.parallelize([]).sum() == 0.0


def test_reduce(sc):
    assert sc.parallelize(range(1, 6)).reduce(lambda a, b: a * b) == 120


def test_reduce_empty_raises(sc):
    with pytest.raises(SparkliteError):
        sc.parallelize([]).reduce(lambda a, b: a + b)


def test_reduce_skips_empty_partitions(sc):
    # 2 elements over 4 partitions: two partitions are empty.
    assert sc.parallelize([3, 4], n_partitions=4).reduce(lambda a, b: a + b) == 7


def test_max_min(sc):
    rdd = sc.parallelize([5, 3, 9, 1])
    assert rdd.max() == 9
    assert rdd.min() == 1


def test_take(sc):
    assert len(sc.parallelize(range(100)).take(5)) == 5


def test_aggregate_sums_ndarrays(sc):
    rdd = sc.parallelize(range(8))
    zero = np.zeros(3)
    result = rdd.aggregate(
        zero,
        lambda acc, x: acc + np.array([x, 1.0, 0.0]),
        lambda a, b: a + b,
    )
    assert result[0] == 28.0
    assert result[1] == 8.0


def test_aggregate_zero_not_shared(sc):
    """A mutable zero must be copied per partition, not aliased."""
    rdd = sc.parallelize(range(4), n_partitions=4)

    def seq(acc, x):
        acc.append(x)
        return acc

    result = rdd.aggregate([], seq, lambda a, b: a + b)
    assert sorted(result) == [0, 1, 2, 3]


def test_tree_aggregate_matches_aggregate(sc):
    rdd = sc.parallelize(range(16))
    plain = rdd.aggregate(0.0, lambda a, x: a + x, lambda a, b: a + b)
    tree = rdd.tree_aggregate(0.0, lambda a, x: a + x, lambda a, b: a + b,
                              depth=2)
    assert plain == tree == 120.0


def test_sample_fraction_bounds(sc):
    with pytest.raises(SparkliteError):
        sc.parallelize(range(5)).sample(1.5)


def test_sample_deterministic_per_seed(sc):
    rdd = sc.parallelize(range(100))
    a = sorted(rdd.sample(0.3, seed=5).collect())
    b = sorted(rdd.sample(0.3, seed=5).collect())
    c = sorted(rdd.sample(0.3, seed=6).collect())
    assert a == b
    assert a != c


def test_sample_roughly_fraction(sc):
    rdd = sc.parallelize(range(2000))
    n = rdd.sample(0.25, seed=1).count()
    assert 380 < n < 620


def test_sample_zero_and_one(sc):
    rdd = sc.parallelize(range(50))
    assert rdd.sample(0.0, seed=1).count() == 0
    assert rdd.sample(1.0, seed=1).count() == 50


def test_foreach_runs_side_effects(sc):
    seen = []
    sc.parallelize(range(5)).foreach(seen.append)
    assert sorted(seen) == [0, 1, 2, 3, 4]


def test_foreach_partition(sc):
    counts = []
    sc.parallelize(range(10), n_partitions=2).foreach_partition(
        lambda it: counts.append(sum(1 for _ in it))
    )
    assert sorted(counts) == [5, 5]


def test_map_partitions_with_context_gets_ctx(sc):
    executors = []

    def fn(ctx, iterator):
        executors.append(ctx.executor)
        return [sum(1 for _ in iterator)]

    total = sum(
        sc.parallelize(range(12)).map_partitions_with_context(fn).collect()
    )
    assert total == 12
    assert len(set(executors)) == sc.n_executors


def test_with_context_marker(sc):
    @with_context
    def fn(ctx, iterator):
        assert ctx is not None
        return list(iterator)

    assert sorted(sc.parallelize([1, 2]).map_partitions(fn).collect()) == [1, 2]


def test_cache_computes_once(sc):
    calls = []

    def fn(it):
        calls.append(1)
        return list(it)

    rdd = sc.parallelize(range(4), n_partitions=2).map_partitions(fn).cache()
    rdd.collect()
    first = len(calls)
    rdd.collect()
    assert len(calls) == first  # served from cache


def test_cache_unpersist_recomputes(sc):
    calls = []

    def fn(it):
        calls.append(1)
        return list(it)

    rdd = sc.parallelize(range(4), n_partitions=2).map_partitions(fn).cache()
    rdd.collect()
    rdd.unpersist()
    rdd.collect()
    assert len(calls) == 4


def test_collect_charges_driver_traffic(sc):
    before = sc.cluster.metrics.bytes_for_tag("collect:result")
    sc.parallelize([np.zeros(1000)] * 4, n_partitions=4).collect()
    after = sc.cluster.metrics.bytes_for_tag("collect:result")
    assert after - before >= 4 * 8000


def test_actions_advance_virtual_time(sc):
    before = sc.elapsed()
    sc.parallelize(range(100)).map(lambda x: x).collect()
    assert sc.elapsed() > before
