"""Factorization Machine tests: math against a numpy reference, training."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.rng import RngRegistry
from repro.linalg.sparse import SparseRow, batch_index_union
from repro.ml.fm import FMModel, _batch_gradients, _sample_margin, train_fm


def make_interaction_data(n_rows=300, dim=120, nnz=6, seed=9):
    """Labels carry genuine second-order structure (feature co-occurrence)."""
    rng = RngRegistry(seed).get("fm-data")
    rows = []
    for _ in range(n_rows):
        idx = np.sort(rng.choice(dim, size=nnz, replace=False))
        score = (np.sum(idx < 15) >= 2) * 2.0 - 1.0
        score += rng.standard_normal() * 0.3
        rows.append(SparseRow(idx, np.ones(nnz), 1.0 if score > 0 else 0.0))
    return rows


def _reference_margin(w0, w, V, row):
    """Textbook FM formula, O(nnz^2) pairwise form."""
    x = row.to_dense(w.size)
    linear = w0 + float(np.dot(w, x))
    interaction = 0.0
    nz = np.nonzero(x)[0]
    for a in range(len(nz)):
        for b in range(a + 1, len(nz)):
            i, j = nz[a], nz[b]
            interaction += float(np.dot(V[:, i], V[:, j])) * x[i] * x[j]
    return linear + interaction


def test_sample_margin_matches_pairwise_formula():
    rng = np.random.default_rng(2)
    dim, k = 30, 4
    w = rng.standard_normal(dim) * 0.1
    V = rng.standard_normal((k, dim)) * 0.1
    row = SparseRow(np.array([2, 7, 11, 29]),
                    rng.standard_normal(4), 1.0)
    union = row.indices
    block = np.vstack([w[union], V[:, union]])
    positions = np.arange(4)
    fast = _sample_margin(block, positions, row.values, 0.3)
    slow = _reference_margin(0.3, w, V, row)
    assert fast == pytest.approx(slow)


def test_batch_gradients_match_finite_differences():
    rng = np.random.default_rng(4)
    dim, k = 25, 3
    rows = make_interaction_data(n_rows=5, dim=dim, nnz=4, seed=4)
    union = batch_index_union(rows)
    block = rng.standard_normal((k + 1, union.size)) * 0.1
    bias = 0.1

    grad_block, grad_bias, loss = _batch_gradients(block, rows, union, bias)
    eps = 1e-6
    # bias gradient
    _g, _b, loss_up = _batch_gradients(block, rows, union, bias + eps)
    assert (loss_up - loss) / eps == pytest.approx(grad_bias, abs=1e-3)
    # a few block coordinates
    for r, c in [(0, 0), (1, 2), (k, union.size - 1)]:
        bumped = block.copy()
        bumped[r, c] += eps
        _g, _b, loss_up = _batch_gradients(bumped, rows, union, bias)
        numeric = (loss_up - loss) / eps
        assert numeric == pytest.approx(grad_block[r, c], abs=1e-3)


def test_fm_model_parameters_colocated(make_ps2):
    ps2 = make_ps2()
    model = FMModel(ps2, 50, 4)
    for factor in model.factors + [model.weight_grad] + model.factor_grads:
        assert model.weight.is_colocated_with(factor)
    assert len(model.parameter_rows()) == 5
    assert len(set(model.parameter_rows() + model.gradient_rows())) == 10


def test_fm_rejects_zero_factors(make_ps2):
    with pytest.raises(ConfigError):
        FMModel(make_ps2(), 10, 0)


def test_fm_training_decreases_loss(make_ps2):
    rows = make_interaction_data(seed=9)
    result = train_fm(make_ps2(), rows, 120, n_factors=4, learning_rate=0.1,
                      n_iterations=20, batch_fraction=0.5, seed=9)
    assert result.history[0][1] == pytest.approx(np.log(2), abs=1e-2)
    assert result.final_loss < 0.9 * result.history[0][1]


def test_fm_beats_chance_on_interaction_data(make_ps2):
    rows = make_interaction_data(seed=9)
    result = train_fm(make_ps2(), rows, 120, n_factors=4, learning_rate=0.1,
                      n_iterations=30, batch_fraction=0.5, seed=9)
    model = result.extras["model"]
    probs = model.predict_proba(rows)
    labels = np.array([r.label for r in rows])
    acc = float(np.mean((probs > 0.5) == (labels > 0.5)))
    assert acc > 0.7


def test_fm_deterministic(make_ps2):
    rows = make_interaction_data(seed=9)

    def run():
        return train_fm(make_ps2(), rows, 120, n_factors=3,
                        n_iterations=4, batch_fraction=0.5, seed=5).history

    assert run() == run()


def test_fm_target_loss_stops(make_ps2):
    rows = make_interaction_data(seed=9)
    result = train_fm(make_ps2(), rows, 120, n_factors=4, learning_rate=0.2,
                      n_iterations=200, batch_fraction=0.5, seed=9,
                      target_loss=0.6)
    assert result.iterations < 200
    assert result.final_loss <= 0.6


def test_fm_pushes_are_stage_deferred(make_ps2):
    """Gradient block pushes land only at the barrier, like LR's."""
    ps2 = make_ps2()
    rows = make_interaction_data(n_rows=40, seed=9)
    result = train_fm(ps2, rows, 120, n_factors=2, n_iterations=2,
                      batch_fraction=1.0, seed=9)
    assert ps2.metrics.messages_by_tag["push-block:req"] > 0
    assert result.iterations == 2
