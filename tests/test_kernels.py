"""Unit tests for server-side kernels against plain-numpy references."""

import numpy as np
import pytest

from repro.core import kernels


def test_dot_kernel():
    x = np.arange(5.0)
    y = np.full(5, 2.0)
    assert kernels.dot_kernel([x, y]) == pytest.approx(20.0)


def test_axpy_kernel_mutates_first_operand():
    y = np.ones(4)
    x = np.full(4, 3.0)
    kernels.axpy_kernel([y, x], alpha=2.0)
    assert np.allclose(y, 7.0)
    assert np.allclose(x, 3.0)


def test_copy_kernel():
    dst = np.zeros(3)
    src = np.arange(3.0)
    kernels.copy_kernel([dst, src])
    assert np.allclose(dst, src)


def test_scale_shift_kernels():
    x = np.full(4, 2.0)
    kernels.scale_kernel([x], alpha=1.5)
    assert np.allclose(x, 3.0)
    kernels.shift_kernel([x], delta=-1.0)
    assert np.allclose(x, 2.0)


@pytest.mark.parametrize("op,expected", [
    ("add", 5.0), ("sub", 1.0), ("mul", 6.0), ("div", 1.5),
])
def test_binary_kernel(op, expected):
    out = np.zeros(3)
    kernels.binary_kernel([out, np.full(3, 3.0), np.full(3, 2.0)], op=op)
    assert np.allclose(out, expected)


def test_binary_kernel_unknown_op():
    with pytest.raises(ValueError):
        kernels.binary_kernel([np.zeros(1)] * 3, op="pow")


def test_inplace_binary_kernel():
    x = np.full(3, 6.0)
    kernels.inplace_binary_kernel([x, np.full(3, 2.0)], op="div")
    assert np.allclose(x, 3.0)


def _reference_adam(w, v, s, g, lr, beta1, beta2, eps, step):
    """Standard Adam (see the kernel's note on the paper's Eq. 1 typo)."""
    s = beta2 * s + (1 - beta2) * g * g
    v = beta1 * v + (1 - beta1) * g
    s_hat = s / (1 - beta2**step)
    v_hat = v / (1 - beta1**step)
    w = w - lr * v_hat / (np.sqrt(s_hat) + eps)
    return w, v, s


def test_adam_kernel_matches_reference():
    rng = np.random.default_rng(3)
    w = rng.standard_normal(20)
    v = rng.standard_normal(20) * 0.1
    s = np.abs(rng.standard_normal(20)) * 0.1
    g = rng.standard_normal(20)
    args = dict(lr=0.618, beta1=0.9, beta2=0.999, eps=1e-8, step=3)
    ref_w, ref_v, ref_s = _reference_adam(
        w.copy(), v.copy(), s.copy(), g, **args
    )
    w2, v2, s2, g2 = w.copy(), v.copy(), s.copy(), g.copy()
    kernels.adam_update_kernel([w2, v2, s2, g2], **args)
    assert np.allclose(w2, ref_w)
    assert np.allclose(v2, ref_v)
    assert np.allclose(s2, ref_s)
    assert np.allclose(g2, g)  # gradient is read-only


def test_adam_kernel_returns_grad_norm():
    g = np.array([3.0, 4.0])
    out = kernels.adam_update_kernel(
        [np.zeros(2), np.zeros(2), np.zeros(2), g],
        lr=0.1, beta1=0.9, beta2=0.999, eps=1e-8, step=1,
    )
    assert out == pytest.approx(25.0)


def test_sgd_kernel():
    w = np.ones(3)
    kernels.sgd_update_kernel([w, np.full(3, 2.0)], lr=0.25)
    assert np.allclose(w, 0.5)


def test_adagrad_kernel():
    w = np.zeros(2)
    h = np.zeros(2)
    g = np.array([2.0, -2.0])
    kernels.adagrad_update_kernel([w, h, g], lr=1.0, eps=0.0)
    assert np.allclose(h, 4.0)
    assert np.allclose(w, [-1.0, 1.0])


def test_rmsprop_kernel():
    w = np.zeros(1)
    h = np.zeros(1)
    g = np.array([3.0])
    kernels.rmsprop_update_kernel([w, h, g], lr=1.0, decay=0.0, eps=0.0)
    assert h[0] == pytest.approx(9.0)
    assert w[0] == pytest.approx(-1.0)


# -- GBDT split finding ---------------------------------------------------------

def _brute_force_best_split(grad, hess, n_bins, pg, ph, lam, mcw):
    """Enumerate every (feature, cut) directly."""
    n_features = grad.size // n_bins
    parent = pg**2 / (ph + lam)
    best = (-np.inf, -1, -1, 0.0, 0.0)
    for f in range(n_features):
        g = grad[f * n_bins:(f + 1) * n_bins]
        h = hess[f * n_bins:(f + 1) * n_bins]
        for cut in range(n_bins - 1):
            gl = g[:cut + 1].sum()
            hl = h[:cut + 1].sum()
            gr, hr = pg - gl, ph - hl
            if hl < mcw or hr < mcw:
                continue
            gain = gl**2 / (hl + lam) + gr**2 / (hr + lam) - parent
            if gain > best[0]:
                best = (gain, f, cut, gl, hl)
    return best


def test_split_gain_kernel_matches_brute_force():
    rng = np.random.default_rng(11)
    n_bins, n_features = 6, 5
    grad = rng.standard_normal(n_bins * n_features)
    hess = np.abs(rng.standard_normal(n_bins * n_features)) + 0.1
    pg, ph = float(grad.sum()), float(hess.sum())
    got = kernels.split_gain_kernel(
        [grad, hess], start=0, stop=grad.size, n_bins=n_bins,
        parent_grad=pg, parent_hess=ph, reg_lambda=1.0,
        min_child_weight=1e-6,
    )
    want = _brute_force_best_split(grad, hess, n_bins, pg, ph, 1.0, 1e-6)
    assert got[0] == pytest.approx(want[0])
    assert got[1] == want[1]
    assert got[2] == want[2]
    assert got[3] == pytest.approx(want[3])
    assert got[4] == pytest.approx(want[4])


def test_split_gain_kernel_skips_partial_features():
    """A shard covering half a feature's bins evaluates no cut in it."""
    n_bins = 4
    grad = np.ones(2)  # covers global positions [2, 4): half of feature 0
    hess = np.ones(2)
    got = kernels.split_gain_kernel(
        [grad, hess], start=2, stop=4, n_bins=n_bins,
        parent_grad=4.0, parent_hess=4.0, reg_lambda=1.0,
        min_child_weight=1e-6,
    )
    assert got[0] == -np.inf


def test_split_gain_kernel_respects_min_child_weight():
    grad = np.array([10.0, 0.0, 0.0, -10.0])
    hess = np.array([0.01, 0.01, 0.01, 0.01])
    got = kernels.split_gain_kernel(
        [grad, hess], start=0, stop=4, n_bins=4,
        parent_grad=0.0, parent_hess=0.04, reg_lambda=1.0,
        min_child_weight=1.0,
    )
    assert got[0] == -np.inf


def test_with_range_marker():
    def k(arrays, start, stop):
        return None

    assert not getattr(k, "_wants_range", False)
    kernels.with_range(k)
    assert k._wants_range
