"""Regression tests: sparse access must be exact on ROTATED layouts.

A bug once scrambled sparse pulls on any pool except the context's first:
the client iterated server groups by server index while its cursor walked
indices in column order — two different orders under placement rotation.
These tests pin the contract on non-zero-rotation pools specifically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig
from repro.core.context import PS2Context


def rotated_dcv(n_servers=3, dim=40, burn=1, seed=1, rows=6):
    """A DCV whose pool rotation is *burn* (not the context's first pool)."""
    ctx = PS2Context(
        config=ClusterConfig(n_executors=2, n_servers=n_servers, seed=seed)
    )
    for _ in range(burn):
        ctx.dense(4)
    dcv = ctx.dense(dim, rows=rows)
    assert dcv.layout.rotation == burn % n_servers
    return ctx, dcv


def test_sparse_pull_input_order_on_rotated_pool():
    _ctx, w = rotated_dcv()
    w.push(np.arange(40.0))
    got = w.pull(indices=np.array([39, 0, 17, 5, 23]))
    assert np.allclose(got, [39, 0, 17, 5, 23])


def test_sparse_push_on_rotated_pool():
    _ctx, w = rotated_dcv()
    w.add(np.array([1.0, 2.0, 3.0]), indices=np.array([39, 0, 17]))
    expected = np.zeros(40)
    expected[[39, 0, 17]] = [1.0, 2.0, 3.0]
    assert np.allclose(w.pull(), expected)


def test_sparse_assign_on_rotated_pool():
    _ctx, w = rotated_dcv()
    w.push(np.array([7.0, 8.0]), indices=np.array([30, 2]))
    got = w.pull()
    assert got[30] == 7.0 and got[2] == 8.0


def test_block_ops_on_rotated_pool():
    ctx, w = rotated_dcv(rows=8)
    sibling = w.derive()
    client = ctx.coordinator_client
    block = np.stack([np.arange(5.0), np.arange(5.0) * 10])
    indices = np.array([39, 1, 20, 8, 33])
    client.push_block_add(w.matrix_id, [w.row, sibling.row], block,
                          indices=indices)
    got = client.pull_block(w.matrix_id, [w.row, sibling.row],
                            indices=indices)
    assert np.allclose(got, block)


def test_pull_range_on_rotated_pool():
    _ctx, w = rotated_dcv()
    w.push(np.arange(40.0))
    assert np.allclose(w._client().pull_range(w.matrix_id, w.row, 10, 30),
                       np.arange(10.0, 30.0))


def test_training_independent_of_prior_pool_count():
    """The quickcheck scenario: training after unrelated DCV activity must
    behave exactly as on a fresh context."""
    from repro.data import sparse_classification
    from repro.ml import train_logistic_regression

    rows, _ = sparse_classification(150, 500, 8, seed=2)

    def run(burn):
        ctx = PS2Context(
            config=ClusterConfig(n_executors=4, n_servers=4, seed=2)
        )
        for _ in range(burn):
            ctx.dense(10)
        return train_logistic_regression(
            ctx, rows, 500, optimizer="sgd", n_iterations=5,
            batch_fraction=0.5, seed=2,
        ).history

    losses_fresh = [l for _t, l in run(0)]
    losses_burned = [l for _t, l in run(3)]
    assert losses_fresh == pytest.approx(losses_burned)


@given(
    rotation=st.integers(min_value=0, max_value=7),
    n_servers=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_property_sparse_round_trip_any_rotation(rotation, n_servers, data):
    dim = 35
    ctx = PS2Context(
        config=ClusterConfig(n_executors=2, n_servers=n_servers, seed=3)
    )
    for _ in range(rotation):
        ctx.dense(2)
    w = ctx.dense(dim, rows=2)
    indices = data.draw(st.lists(
        st.integers(min_value=0, max_value=dim - 1),
        min_size=1, max_size=12, unique=True,
    ))
    values = data.draw(st.lists(
        st.floats(min_value=-50, max_value=50, allow_nan=False, width=32),
        min_size=len(indices), max_size=len(indices),
    ))
    w.push(np.asarray(values), indices=np.asarray(indices, dtype=np.int64))
    got = w.pull(indices=np.asarray(indices, dtype=np.int64))
    assert np.allclose(got, values, atol=1e-12)
