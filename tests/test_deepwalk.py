"""DeepWalk trainer tests (PS2 vs pull/push realizations)."""

import numpy as np
import pytest

from repro.data import preferential_attachment_graph, random_walks
from repro.ml.deepwalk import build_embeddings, embedding_matrix, \
    train_deepwalk


@pytest.fixture(scope="module")
def graph():
    adjacency = preferential_attachment_graph(40, out_degree=3, seed=13)
    walks = random_walks(adjacency, 60, walk_length=8, seed=13)
    return adjacency, walks


def test_build_embeddings_all_colocated(make_ps2):
    ps2 = make_ps2()
    embeddings = build_embeddings(ps2, 10, 8)
    assert len(embeddings) == 20
    assert all(embeddings[0].is_colocated_with(e) for e in embeddings[1:])


def test_build_embeddings_initialized_nonzero(make_ps2):
    ps2 = make_ps2()
    embeddings = build_embeddings(ps2, 5, 8)
    assert all(np.any(e.materialize() != 0) for e in embeddings)


def test_training_decreases_loss(make_ps2, graph):
    _adj, walks = graph
    result = train_deepwalk(
        make_ps2(), walks, 40, embedding_dim=8, n_iterations=5,
        batch_size=150, learning_rate=0.3, seed=13,
    )
    assert result.final_loss < result.history[0][1]
    assert result.iterations == 5


def test_embeddings_change_during_training(make_ps2, graph):
    _adj, walks = graph
    ps2 = make_ps2()
    embeddings = build_embeddings(ps2, 40, 8)
    before = embedding_matrix(embeddings, 40)
    train_deepwalk(ps2, walks, 40, embedding_dim=8, n_iterations=2,
                   batch_size=100, learning_rate=0.3, seed=13,
                   embeddings=embeddings)
    after = embedding_matrix(embeddings, 40)
    assert not np.allclose(before, after)


def test_both_realizations_learn_identically(make_ps2, graph):
    """PS- and PS2-DeepWalk are the same algorithm; same losses."""
    _adj, walks = graph
    kwargs = dict(embedding_dim=8, n_iterations=3, batch_size=120,
                  learning_rate=0.2, seed=13)
    ps2_run = train_deepwalk(make_ps2(), walks, 40, server_side=True, **kwargs)
    ps_run = train_deepwalk(make_ps2(), walks, 40, server_side=False, **kwargs)
    for (_ta, la), (_tb, lb) in zip(ps2_run.history, ps_run.history):
        assert la == pytest.approx(lb, rel=1e-9)


def test_ps2_faster_than_pushpull(make_ps2, graph):
    """Figure 9(c): server-side computation wins on few servers."""
    _adj, walks = graph
    kwargs = dict(embedding_dim=32, n_iterations=2, batch_size=120,
                  learning_rate=0.2, seed=13)
    ps2_run = train_deepwalk(make_ps2(n_servers=2), walks, 40,
                             server_side=True, **kwargs)
    ps_run = train_deepwalk(make_ps2(n_servers=2), walks, 40,
                            server_side=False, **kwargs)
    assert ps_run.elapsed > ps2_run.elapsed


def test_speedup_shrinks_with_more_servers(make_ps2, graph):
    """Figure 9(d): the DCV win erodes as servers multiply."""
    _adj, walks = graph
    kwargs = dict(embedding_dim=32, n_iterations=2, batch_size=120,
                  learning_rate=0.2, seed=13)

    def ratio(n_servers):
        ps2_run = train_deepwalk(make_ps2(n_servers=n_servers), walks, 40,
                                 server_side=True, **kwargs)
        ps_run = train_deepwalk(make_ps2(n_servers=n_servers), walks, 40,
                                server_side=False, **kwargs)
        return ps_run.elapsed / ps2_run.elapsed

    assert ratio(2) > ratio(8)


def test_ps2_moves_fewer_bytes(make_ps2, graph):
    _adj, walks = graph
    kwargs = dict(embedding_dim=32, n_iterations=2, batch_size=100,
                  learning_rate=0.2, seed=13)
    ctx_a = make_ps2(n_servers=2)
    train_deepwalk(ctx_a, walks, 40, server_side=True, **kwargs)
    ctx_b = make_ps2(n_servers=2)
    train_deepwalk(ctx_b, walks, 40, server_side=False, **kwargs)
    assert ctx_a.metrics.total_bytes() < ctx_b.metrics.total_bytes()


def test_rejects_empty_pairs(make_ps2):
    with pytest.raises(ValueError):
        train_deepwalk(make_ps2(), [np.array([1])], 5, window=4)
