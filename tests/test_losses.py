"""Loss/gradient math checked against finite differences and dense mirrors."""

import numpy as np
import pytest

from repro.linalg.sparse import SparseRow, batch_index_union, batch_nnz
from repro.ml import losses


def make_rows(seed=0, n=6, dim=30, nnz=5):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        idx = np.sort(rng.choice(dim, size=nnz, replace=False))
        rows.append(SparseRow(idx, rng.standard_normal(nnz),
                              float(rng.integers(2))))
    return rows


def test_sigmoid_bounds_and_stability():
    x = np.array([-1000.0, -1.0, 0.0, 1.0, 1000.0])
    s = losses.sigmoid(x)
    assert np.all((s >= 0) & (s <= 1))
    assert s[2] == pytest.approx(0.5)
    assert s[0] == pytest.approx(0.0)
    assert s[4] == pytest.approx(1.0)


def test_log1p_exp_extremes():
    assert losses.log1p_exp(np.array([1000.0]))[0] == pytest.approx(1000.0)
    assert losses.log1p_exp(np.array([-1000.0]))[0] == pytest.approx(0.0)
    assert losses.log1p_exp(np.array([0.0]))[0] == pytest.approx(np.log(2))


def test_logistic_grad_matches_finite_differences():
    rows = make_rows()
    union = batch_index_union(rows)
    rng = np.random.default_rng(1)
    w = rng.standard_normal(union.size) * 0.1
    grad, loss = losses.logistic_grad_batch(rows, union, w)
    eps = 1e-6
    for k in range(0, union.size, 3):
        bumped = w.copy()
        bumped[k] += eps
        _g, loss_up = losses.logistic_grad_batch(rows, union, bumped)
        numeric = (loss_up - loss) / eps
        assert numeric == pytest.approx(grad[k], abs=1e-3)


def test_logistic_sparse_equals_dense():
    rows = make_rows(seed=2)
    union = batch_index_union(rows)
    dense_w = np.random.default_rng(3).standard_normal(30) * 0.1
    sparse_grad, sparse_loss = losses.logistic_grad_batch(
        rows, union, dense_w[union]
    )
    dense_grad, dense_loss = losses.logistic_grad_dense(rows, dense_w)
    assert sparse_loss == pytest.approx(dense_loss)
    assert np.allclose(sparse_grad, dense_grad[union])


def test_logistic_loss_batch_matches_grad_batch_loss():
    rows = make_rows(seed=4)
    union = batch_index_union(rows)
    w = np.zeros(union.size)
    _grad, loss = losses.logistic_grad_batch(rows, union, w)
    only_loss = losses.logistic_loss_batch(rows, union, w)
    assert only_loss == pytest.approx(loss)


def test_logistic_loss_at_zero_weights():
    rows = make_rows(seed=5)
    union = batch_index_union(rows)
    _g, loss = losses.logistic_grad_batch(rows, union, np.zeros(union.size))
    assert loss / len(rows) == pytest.approx(np.log(2))


def test_hinge_grad_matches_finite_differences():
    rows = make_rows(seed=6)
    union = batch_index_union(rows)
    rng = np.random.default_rng(7)
    w = rng.standard_normal(union.size) * 0.1
    grad, loss = losses.hinge_grad_batch(rows, union, w)
    eps = 1e-6
    for k in range(0, union.size, 4):
        bumped = w.copy()
        bumped[k] += eps
        _g, loss_up = losses.hinge_grad_batch(rows, union, bumped)
        numeric = (loss_up - loss) / eps
        assert numeric == pytest.approx(grad[k], abs=1e-3)


def test_hinge_zero_gradient_when_margins_satisfied():
    row = SparseRow(np.array([0]), np.array([1.0]), 1.0)
    union = np.array([0])
    grad, loss = losses.hinge_grad_batch([row], union, np.array([5.0]))
    assert loss == 0.0
    assert grad[0] == 0.0


def test_grad_flops_scales_with_nnz():
    rows = make_rows()
    assert losses.grad_flops(rows) == 6.0 * batch_nnz(rows)


# -- SparseRow helpers ----------------------------------------------------------

def test_sparse_row_dot_dense():
    row = SparseRow(np.array([1, 3]), np.array([2.0, 4.0]), 1.0)
    dense = np.arange(5.0)
    assert row.dot_dense(dense) == pytest.approx(2.0 + 12.0)


def test_sparse_row_to_dense():
    row = SparseRow(np.array([0, 4]), np.array([1.0, 5.0]), 0.0)
    assert np.allclose(row.to_dense(6), [1, 0, 0, 0, 5, 0])


def test_sparse_row_shape_mismatch():
    from repro.common.errors import DimensionMismatchError

    with pytest.raises(DimensionMismatchError):
        SparseRow(np.array([1, 2]), np.array([1.0]), 0.0)


def test_batch_index_union_sorted_unique():
    rows = [
        SparseRow(np.array([3, 1]), np.ones(2), 1),
        SparseRow(np.array([1, 9]), np.ones(2), 0),
    ]
    assert batch_index_union(rows).tolist() == [1, 3, 9]


def test_batch_index_union_empty():
    assert batch_index_union([]).size == 0
