"""Unit tests for cluster topology, cost charging and failure injection."""

import pytest

from repro.cluster.cluster import DRIVER, executor_id, server_id
from repro.cluster.failures import FailureInjector
from repro.common.errors import ConfigError, UnknownNodeError
from repro.common.rng import RngRegistry
from repro.config import ClusterConfig, FailureConfig, NetworkSpec, NodeSpec


def test_default_topology(cluster):
    assert cluster.driver.node_id == DRIVER
    assert len(cluster.executors) == 4
    assert len(cluster.servers) == 3
    assert cluster.executors[0] == executor_id(0)
    assert cluster.servers[2] == server_id(2)


def test_nodes_by_role(cluster):
    assert cluster.nodes_by_role("executor") == cluster.executors
    assert cluster.nodes_by_role("server") == cluster.servers
    assert cluster.nodes_by_role("driver") == [DRIVER]


def test_unknown_node(cluster):
    with pytest.raises(UnknownNodeError):
        cluster.node("nope")


def test_charge_flops_advances_clock(cluster):
    flops = cluster.config.node.flops  # exactly one second of work
    t = cluster.charge_flops(executor_id(0), flops)
    assert t == pytest.approx(1.0)
    assert cluster.clock.now(executor_id(1)) == 0.0


def test_charge_seconds(cluster):
    cluster.charge_seconds(DRIVER, 0.25)
    assert cluster.clock.now(DRIVER) == pytest.approx(0.25)


def test_elapsed_is_makespan(cluster):
    cluster.charge_seconds(executor_id(2), 3.0)
    assert cluster.elapsed() == pytest.approx(3.0)


def test_barrier_all_nodes(cluster):
    cluster.charge_seconds(executor_id(0), 2.0)
    cluster.barrier()
    assert cluster.clock.now(server_id(1)) == pytest.approx(2.0)


def test_reset_time(cluster):
    cluster.charge_seconds(DRIVER, 1.0)
    cluster.reset_time()
    assert cluster.elapsed() == 0.0


# -- config validation ---------------------------------------------------------

def test_config_rejects_bad_executors():
    with pytest.raises(ConfigError):
        ClusterConfig(n_executors=0)


def test_config_rejects_negative_servers():
    with pytest.raises(ConfigError):
        ClusterConfig(n_servers=-1)


def test_nodespec_validation():
    with pytest.raises(ConfigError):
        NodeSpec(cores=0)
    with pytest.raises(ConfigError):
        NodeSpec(flops=-1)
    with pytest.raises(ConfigError):
        NodeSpec(nic_bandwidth=0)


def test_networkspec_validation():
    with pytest.raises(ConfigError):
        NetworkSpec(latency=-1)
    with pytest.raises(ConfigError):
        NetworkSpec(bandwidth=0)


def test_failureconfig_validation():
    with pytest.raises(ConfigError):
        FailureConfig(task_failure_prob=1.5)
    with pytest.raises(ConfigError):
        FailureConfig(max_task_retries=-1)


def test_nodespec_compute_seconds():
    spec = NodeSpec(flops=1e9)
    assert spec.compute_seconds(5e8) == pytest.approx(0.5)


# -- failure injector ---------------------------------------------------------

def test_injector_never_fails_at_zero_prob():
    inj = FailureInjector(RngRegistry(1).get("f"), task_failure_prob=0.0)
    assert not any(inj.should_fail_task() for _ in range(1000))


def test_injector_always_fails_at_one():
    inj = FailureInjector(RngRegistry(1).get("f"), task_failure_prob=1.0)
    assert all(inj.should_fail_task() for _ in range(10))
    assert inj.injected_task_failures == 10


def test_injector_rate_is_roughly_right():
    inj = FailureInjector(RngRegistry(3).get("f"), task_failure_prob=0.2)
    failures = sum(inj.should_fail_task() for _ in range(5000))
    assert 800 < failures < 1200


def test_injector_is_deterministic():
    def run():
        inj = FailureInjector(RngRegistry(7).get("f"), task_failure_prob=0.3)
        return [inj.should_fail_task() for _ in range(50)]

    assert run() == run()


def test_injector_validates_prob():
    with pytest.raises(ConfigError):
        FailureInjector(RngRegistry(1).get("f"), task_failure_prob=2.0)


def test_server_failure_schedule():
    inj = FailureInjector(RngRegistry(1).get("f"))
    inj.schedule_server_failure("server-0", at_time=5.0)
    assert inj.due_server_failures("server-0", now=4.9) == []
    due = inj.due_server_failures("server-0", now=5.1)
    assert len(due) == 1
    # Popped: not due twice.
    assert inj.due_server_failures("server-0", now=6.0) == []


def test_server_failure_schedule_is_per_server():
    inj = FailureInjector(RngRegistry(1).get("f"))
    inj.schedule_server_failure("server-1", at_time=1.0)
    assert inj.due_server_failures("server-0", now=2.0) == []
    assert len(inj.due_server_failures("server-1", now=2.0)) == 1
