"""Shared fixtures: small deterministic clusters and PS2 contexts."""

import pytest

from repro.config import ClusterConfig, FailureConfig
from repro.cluster.cluster import Cluster
from repro.core.context import PS2Context


@pytest.fixture
def cluster():
    """A small 4-executor / 3-server cluster."""
    return Cluster(ClusterConfig(n_executors=4, n_servers=3, seed=42))


@pytest.fixture
def ps2():
    """A PS2 context over a small cluster."""
    return PS2Context(config=ClusterConfig(n_executors=4, n_servers=3, seed=42))


@pytest.fixture
def make_ps2():
    """Factory for PS2 contexts with custom shapes."""

    def factory(n_executors=4, n_servers=3, seed=42, task_failure_prob=0.0,
                strict_colocation=False):
        config = ClusterConfig(
            n_executors=n_executors,
            n_servers=n_servers,
            seed=seed,
            failures=FailureConfig(task_failure_prob=task_failure_prob),
        )
        return PS2Context(config=config, strict_colocation=strict_colocation)

    return factory
