"""Unit + property tests for the order-insensitive TimelineResource."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resource import TimelineResource


def test_first_reservation_starts_at_earliest():
    r = TimelineResource()
    assert r.reserve(2.0, 1.0) == 2.0


def test_zero_duration_is_free():
    r = TimelineResource()
    assert r.reserve(5.0, 0.0) == 5.0
    assert len(r) == 0


def test_second_overlapping_reservation_queues():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    assert r.reserve(0.5, 1.0) == 1.0


def test_disjoint_reservations_do_not_queue():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    assert r.reserve(10.0, 1.0) == 10.0


def test_late_processed_early_arrival_uses_idle_gap():
    """The fix for sequential simulation of concurrent actors: a job that
    arrives earlier (but is processed later) slots into the idle past."""
    r = TimelineResource()
    r.reserve(10.0, 1.0)
    assert r.reserve(0.0, 1.0) == 0.0


def test_gap_too_small_is_skipped():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    r.reserve(1.5, 1.0)
    # Gap [1.0, 1.5) cannot fit 0.8 seconds.
    assert r.reserve(0.9, 0.8) == 2.5


def test_gap_exactly_fits():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    r.reserve(2.0, 1.0)
    assert r.reserve(0.0, 1.0) == 1.0


def test_busy_seconds_accumulates():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    r.reserve(5.0, 2.5)
    assert abs(r.busy_seconds() - 3.5) < 1e-12


def test_horizon():
    r = TimelineResource()
    assert r.horizon() == 0.0
    r.reserve(1.0, 2.0)
    assert r.horizon() == 3.0


def test_reset():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    r.reset()
    assert r.horizon() == 0.0
    assert len(r) == 0


def test_adjacent_intervals_merge():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    r.reserve(1.0, 1.0)
    assert len(r) == 1
    assert r.horizon() == 2.0


# -- probe boundary values (PR 7 audit of bisect_left on interval ends) ------


def test_arrival_exactly_at_interval_end_starts_there():
    """bisect_left lands an arrival == an interval's end ON that interval;
    the zero-width gap it probes is rejected and the walk advances — the
    booking starts exactly at the arrival (no phantom delay, no overlap)."""
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    assert r.reserve(1.0, 1.0) == 1.0
    assert len(r) == 1  # merged: [0, 2)
    assert r.horizon() == 2.0


def test_arrival_exactly_at_interior_interval_end():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    r.reserve(5.0, 1.0)
    # Arrival == first interval's end, gap [1, 5) fits: starts at 1.0.
    assert r.reserve(1.0, 2.0) == 1.0
    assert len(r) == 2


def test_gap_exactly_duration_fits():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    r.reserve(2.0, 1.0)
    # Gap [1, 2) is exactly the duration.
    assert r.reserve(0.0, 1.0) == 1.0
    assert len(r) == 1


def test_gap_short_by_less_than_eps_still_fits():
    """The fit test tolerates a sub-epsilon shortfall (floating-point
    hygiene): a gap short by < _MERGE_EPS is treated as fitting."""
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    r.reserve(2.0, 1.0)
    assert r.reserve(0.0, 1.0 + 0.5e-12) == 1.0


def test_gap_short_by_more_than_eps_is_skipped():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    r.reserve(2.0, 1.0)
    assert r.reserve(0.0, 1.0 + 1e-9) == 3.0


def test_sub_epsilon_duration_books_via_general_path():
    """Durations <= 2 * _MERGE_EPS skip the shortcut branches but still
    book through probe + _insert (they merge into a neighbor)."""
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    start = r.reserve(0.5, 1e-12)
    assert start == 1.0
    assert len(r) == 1


# -- incremental busy_seconds exactness (PR 7 satellite) ----------------------


def _resummed_busy(r):
    return sum(e - s for s, e in zip(r._starts, r._ends))


def test_busy_exact_merge_prev():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    r.reserve(1.0, 2.0)  # merge-prev
    assert r.busy_seconds() == _resummed_busy(r)


def test_busy_exact_merge_next():
    r = TimelineResource()
    r.reserve(2.0, 1.0)
    r.reserve(0.5, 1.5)  # ends at 2.0: merge-next
    assert r.busy_seconds() == _resummed_busy(r)
    assert len(r) == 1


def test_busy_exact_merge_both():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    r.reserve(2.0, 1.0)
    r.reserve(1.0, 1.0)  # bridges the gap: merge-both
    assert r.busy_seconds() == _resummed_busy(r)
    assert len(r) == 1


dense_jobs_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=50, allow_nan=False),
        st.floats(min_value=0.001, max_value=10, allow_nan=False),
    ),
    min_size=1,
    max_size=30,
)


@given(dense_jobs_strategy)
@settings(max_examples=200, deadline=None)
def test_property_incremental_busy_tracks_resum(jobs):
    """The running _busy total tracks an O(n) re-sum of the interval list
    through merge-prev, merge-next and merge-both collapses.  Each branch
    adds the EXACT float delta, so the only divergence is the association
    order of the accumulation itself — bounded by a few ulps per booking,
    never a dropped or double-counted interval."""
    r = TimelineResource()
    for i, (earliest, duration) in enumerate(jobs):
        r.reserve(earliest, duration)
        resum = _resummed_busy(r)
        assert abs(r.busy_seconds() - resum) <= 1e-12 * (i + 1) * max(
            1.0, resum
        )


jobs_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0.001, max_value=10, allow_nan=False),
    ),
    min_size=1,
    max_size=12,
)


@given(jobs_strategy)
@settings(max_examples=100, deadline=None)
def test_property_no_overbooking(jobs):
    """Booked intervals never overlap: total busy == sum of durations."""
    r = TimelineResource()
    for earliest, duration in jobs:
        start = r.reserve(earliest, duration)
        assert start >= earliest - 1e-9
    expected = sum(d for _e, d in jobs)
    assert abs(r.busy_seconds() - expected) < 1e-6


@given(jobs_strategy)
@settings(max_examples=60, deadline=None)
def test_property_total_busy_is_order_insensitive(jobs):
    """Capacity consumed does not depend on processing order."""
    totals = set()
    horizons = []
    orders = [jobs, list(reversed(jobs))]
    if len(jobs) > 2:
        orders.append(jobs[1:] + jobs[:1])
    for order in orders:
        r = TimelineResource()
        for earliest, duration in order:
            r.reserve(earliest, duration)
        totals.add(round(r.busy_seconds(), 6))
        horizons.append(r.horizon())
    assert len(totals) == 1


def test_exhaustive_order_insensitive_small_case():
    jobs = [(0.0, 1.0), (0.5, 1.0), (3.0, 0.5)]
    results = set()
    for perm in itertools.permutations(jobs):
        r = TimelineResource()
        for earliest, duration in perm:
            r.reserve(earliest, duration)
        results.add(round(r.busy_seconds(), 9))
    assert len(results) == 1
