"""Unit + property tests for the order-insensitive TimelineResource."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resource import TimelineResource


def test_first_reservation_starts_at_earliest():
    r = TimelineResource()
    assert r.reserve(2.0, 1.0) == 2.0


def test_zero_duration_is_free():
    r = TimelineResource()
    assert r.reserve(5.0, 0.0) == 5.0
    assert len(r) == 0


def test_second_overlapping_reservation_queues():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    assert r.reserve(0.5, 1.0) == 1.0


def test_disjoint_reservations_do_not_queue():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    assert r.reserve(10.0, 1.0) == 10.0


def test_late_processed_early_arrival_uses_idle_gap():
    """The fix for sequential simulation of concurrent actors: a job that
    arrives earlier (but is processed later) slots into the idle past."""
    r = TimelineResource()
    r.reserve(10.0, 1.0)
    assert r.reserve(0.0, 1.0) == 0.0


def test_gap_too_small_is_skipped():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    r.reserve(1.5, 1.0)
    # Gap [1.0, 1.5) cannot fit 0.8 seconds.
    assert r.reserve(0.9, 0.8) == 2.5


def test_gap_exactly_fits():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    r.reserve(2.0, 1.0)
    assert r.reserve(0.0, 1.0) == 1.0


def test_busy_seconds_accumulates():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    r.reserve(5.0, 2.5)
    assert abs(r.busy_seconds() - 3.5) < 1e-12


def test_horizon():
    r = TimelineResource()
    assert r.horizon() == 0.0
    r.reserve(1.0, 2.0)
    assert r.horizon() == 3.0


def test_reset():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    r.reset()
    assert r.horizon() == 0.0
    assert len(r) == 0


def test_adjacent_intervals_merge():
    r = TimelineResource()
    r.reserve(0.0, 1.0)
    r.reserve(1.0, 1.0)
    assert len(r) == 1
    assert r.horizon() == 2.0


jobs_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0.001, max_value=10, allow_nan=False),
    ),
    min_size=1,
    max_size=12,
)


@given(jobs_strategy)
@settings(max_examples=100, deadline=None)
def test_property_no_overbooking(jobs):
    """Booked intervals never overlap: total busy == sum of durations."""
    r = TimelineResource()
    for earliest, duration in jobs:
        start = r.reserve(earliest, duration)
        assert start >= earliest - 1e-9
    expected = sum(d for _e, d in jobs)
    assert abs(r.busy_seconds() - expected) < 1e-6


@given(jobs_strategy)
@settings(max_examples=60, deadline=None)
def test_property_total_busy_is_order_insensitive(jobs):
    """Capacity consumed does not depend on processing order."""
    totals = set()
    horizons = []
    orders = [jobs, list(reversed(jobs))]
    if len(jobs) > 2:
        orders.append(jobs[1:] + jobs[:1])
    for order in orders:
        r = TimelineResource()
        for earliest, duration in order:
            r.reserve(earliest, duration)
        totals.add(round(r.busy_seconds(), 6))
        horizons.append(r.horizon())
    assert len(totals) == 1


def test_exhaustive_order_insensitive_small_case():
    jobs = [(0.0, 1.0), (0.5, 1.0), (3.0, 0.5)]
    results = set()
    for perm in itertools.permutations(jobs):
        r = TimelineResource()
        for earliest, duration in perm:
            r.reserve(earliest, duration)
        results.add(round(r.busy_seconds(), 9))
    assert len(results) == 1
