"""Edge-case coverage: pool growth, realignment corners, recovery limits."""

import numpy as np
import pytest

from repro.common.errors import PoolExhaustedError, PSError
from repro.core.pool import DCVPool
from repro.ps.partitioner import ColumnLayout


def test_pool_grows_by_whole_segments(ps2):
    w = ps2.dense(10, rows=3, name="seggy")
    pool = w.pool
    assert len(pool.segments) == 1
    for _ in range(3):
        w.derive()
    # 4 rows needed > 3 per segment: a second co-located segment appeared.
    assert len(pool.segments) == 2
    assert pool.rows_per_segment == 3


def test_pool_segments_share_layout(ps2):
    w = ps2.dense(10, rows=2)
    derived = [w.derive() for _ in range(4)]
    assert len({id(d.layout) for d in [w] + derived}) == 1
    matrix_ids = {d.matrix_id for d in derived}
    assert len(matrix_ids) >= 2  # spans segments
    assert all(w.is_colocated_with(d) for d in derived)


def test_pool_requires_at_least_one_row(ps2):
    with pytest.raises(PoolExhaustedError):
        DCVPool(ps2, 10, 0, ColumnLayout(10, 3), "empty")


def test_pool_free_and_reacquire_round_robin(ps2):
    w = ps2.dense(10, rows=2, allow_growth=False)
    slot_a = w.derive()
    operand = slot_a.operand()
    slot_a.free()
    slot_b = w.derive()
    assert slot_b.operand() == operand


def test_realign_between_different_server_counts_is_rejected(make_ps2):
    """Realign only works within one deployment; mixing contexts fails."""
    ps2_a = make_ps2(n_servers=2)
    ps2_b = make_ps2(n_servers=3)
    a = ps2_a.dense(10).fill(1.0)
    b = ps2_b.dense(10).fill(1.0)
    with pytest.raises(Exception):
        a.dot(b)  # different clusters; server lookups cannot line up


def test_realign_when_ranges_partially_overlap(ps2):
    """Rotation shifts whole ranges; realign must copy every overlap."""
    src = ps2.dense(17)
    ps2.dense(3)  # bump rotation
    dst_anchor = ps2.dense(17, rows=2)
    src.push(np.arange(17.0))
    ps2.realign(src, dst_anchor)
    assert np.allclose(dst_anchor.pull(), np.arange(17.0))


def test_realign_single_server_is_local(make_ps2):
    ps2 = make_ps2(n_servers=1)
    a = ps2.dense(10).fill(2.0)
    b = ps2.dense(10)
    before = ps2.metrics.bytes_for_tag("realign")
    ps2.realign(a, b)
    # One server: every "overlap" is server-local, zero realign bytes.
    assert ps2.metrics.bytes_for_tag("realign") == before
    assert np.allclose(b.pull(), 2.0)


def test_client_recovery_gives_up_eventually(ps2, monkeypatch):
    """If recovery cannot actually revive the server, the client stops
    retrying and surfaces a PSError instead of looping forever."""
    w = ps2.dense(10)
    server = ps2.master.server(0)
    server.crash()
    monkeypatch.setattr(ps2.master, "recover", lambda index: None)
    with pytest.raises(PSError):
        w.pull()


def test_checkpoint_then_recover_preserves_all_matrices(ps2):
    a = ps2.dense(12).fill(3.0)
    b = ps2.dense(20)
    b.push(np.arange(20.0))
    ps2.checkpoint()
    ps2.master.server(1).crash()
    assert np.allclose(a.pull(), 3.0)
    assert np.allclose(b.pull(), np.arange(20.0))


def test_updates_after_checkpoint_are_lost_on_crash(ps2):
    w = ps2.dense(12).fill(1.0)
    ps2.checkpoint()
    w.fill(9.0)
    ps2.master.server(0).crash()
    pulled = w.pull()
    # The crashed server's shard reverted to the checkpoint; others kept
    # their post-checkpoint values.
    layout = w.layout
    for server_index, start, stop in layout.shards_for_row(w.row):
        expected = 1.0 if server_index == 0 else 9.0
        assert np.all(pulled[start:stop] == expected)


def test_sparse_dcv_via_table1_creation_op(ps2):
    from repro.core.dcv import DCV

    v = DCV.sparse(ps2, 30)
    assert v.is_sparse
    v.add(np.array([1.0, 2.0]), indices=np.array([4, 29]))
    assert v.nnz() == 2


def test_block_layout_never_splits_blocks(ps2):
    w = ps2.dense(100, block=8)
    for _srv, start, stop in w.layout.shards_for_row(0):
        assert start % 8 == 0
        assert stop % 8 == 0 or stop == 100


def test_zero_length_shards_are_omitted(make_ps2):
    ps2 = make_ps2(n_servers=8)
    w = ps2.dense(3)  # fewer columns than servers
    shards = w.layout.shards_for_row(0)
    assert len(shards) == 3
    assert all(stop > start for _s, start, stop in shards)
    w.push(np.array([1.0, 2.0, 3.0]))
    assert np.allclose(w.pull(), [1, 2, 3])


def test_many_rows_pool_deepwalk_scale(make_ps2):
    """A 2V-row pool (Figure 6's allocation) stays consistent."""
    ps2 = make_ps2(n_servers=2)
    first = ps2.dense(8, rows=40, allow_growth=False, init="uniform",
                      scale=0.1)
    vectors = [first] + [first.derive() for _ in range(39)]
    with pytest.raises(PoolExhaustedError):
        first.derive()
    total = sum(v.sum() for v in vectors)
    assert np.isfinite(total)
