"""Server-side optimizer tests: correctness against numpy and convergence."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.ml.optim import (
    Adagrad,
    Adam,
    LBFGS,
    OPTIMIZERS,
    RMSProp,
    SGD,
    make_optimizer,
)


def test_registry_contains_all_paper_optimizers():
    # Section 5.2.4: "Adagrad, RMSProp and L-BFGS" plus SGD and Adam.
    assert set(OPTIMIZERS) == {"sgd", "adam", "adagrad", "rmsprop", "lbfgs"}


def test_make_optimizer_by_name():
    opt = make_optimizer("adam", learning_rate=0.1)
    assert isinstance(opt, Adam)
    assert opt.learning_rate == 0.1


def test_make_optimizer_unknown():
    with pytest.raises(ValueError):
        make_optimizer("sgdm")


def test_step_before_bind_rejected():
    with pytest.raises(ReproError):
        SGD().step()
    with pytest.raises(ReproError):
        _ = SGD().gradient


def test_bind_allocates_colocated_state(ps2):
    w = ps2.dense(10, rows=8)
    opt = Adam()
    grad = opt.bind(w)
    assert w.is_colocated_with(grad)
    assert w.is_colocated_with(opt.velocity)
    assert w.is_colocated_with(opt.square)


def test_sgd_step_matches_numpy(ps2):
    w = ps2.dense(10, rows=4)
    opt = SGD(learning_rate=0.5)
    grad = opt.bind(w)
    w.push(np.arange(10.0))
    grad.push(np.ones(10))
    opt.step()
    assert np.allclose(w.pull(), np.arange(10.0) - 0.5)


def test_adam_steps_match_driver_reference(ps2):
    """Two Adam steps on DCVs equal the plain-numpy recursion."""
    dim = 12
    rng = np.random.default_rng(5)
    g1, g2 = rng.standard_normal(dim), rng.standard_normal(dim)

    w = ps2.dense(dim, rows=8)
    opt = Adam(learning_rate=0.3)
    grad = opt.bind(w)
    for g in (g1, g2):
        grad.push(g)
        opt.step()

    # Reference
    wr = np.zeros(dim)
    s = np.zeros(dim)
    v = np.zeros(dim)
    for step, g in enumerate((g1, g2), start=1):
        s = 0.999 * s + 0.001 * g * g
        v = 0.9 * v + 0.1 * g
        s_hat = s / (1 - 0.999**step)
        v_hat = v / (1 - 0.9**step)
        wr -= 0.3 * v_hat / (np.sqrt(s_hat) + 1e-8)
    assert np.allclose(w.pull(), wr)


def test_zero_grad_resets(ps2):
    w = ps2.dense(6, rows=4)
    opt = SGD()
    grad = opt.bind(w)
    grad.push(np.ones(6))
    opt.zero_grad()
    assert grad.nnz() == 0


def _minimize_quadratic(ps2, optimizer, steps, target):
    """Minimize 0.5*||w - t||^2 with exact gradients; loss must shrink."""
    dim = target.size
    w = ps2.dense(dim, rows=16)
    grad = optimizer.bind(w)
    losses = []
    for _ in range(steps):
        current = w.pull()
        g = current - target
        optimizer.zero_grad()
        grad.push(g)
        optimizer.step()
        losses.append(float(0.5 * np.dot(g, g)))
    return losses


@pytest.mark.parametrize("opt,steps", [
    (SGD(learning_rate=0.3), 25),
    (Adam(learning_rate=0.1), 60),
    (Adagrad(learning_rate=1.0), 40),
    (RMSProp(learning_rate=0.1), 60),
    (LBFGS(learning_rate=0.5, memory=4), 25),
])
def test_optimizers_minimize_quadratic(make_ps2, opt, steps):
    ps2 = make_ps2()
    target = np.linspace(-1, 1, 8)
    losses = _minimize_quadratic(ps2, opt, steps, target)
    # Adaptive optimizers hover near the optimum; judge by the best point.
    assert min(losses) < 0.05 * losses[0]


def test_lbfgs_history_capped(make_ps2):
    ps2 = make_ps2()
    opt = LBFGS(learning_rate=0.5, memory=3)
    target = np.linspace(0, 1, 6)
    _minimize_quadratic(ps2, opt, 15, target)
    assert len(opt._pairs) <= 3


def test_lbfgs_history_lives_on_servers(make_ps2):
    """The curvature pairs are DCVs co-located with the weight."""
    ps2 = make_ps2()
    opt = LBFGS(learning_rate=0.5, memory=2)
    target = np.ones(5)
    _minimize_quadratic(ps2, opt, 6, target)
    s_vec, y_vec, _rho = opt._pairs[-1]
    assert opt.weight.is_colocated_with(s_vec)
    assert opt.weight.is_colocated_with(y_vec)


def test_step_counts(ps2):
    w = ps2.dense(4, rows=4)
    opt = SGD()
    grad = opt.bind(w)
    grad.push(np.ones(4))
    opt.step()
    opt.step()
    assert opt.step_count == 2
