"""Baseline-system tests: MLlib breakdowns, Petuum, DistML, collectives."""

import numpy as np
import pytest

from repro.baselines import (
    ring_allreduce,
    train_lda_glint,
    train_lda_mllib,
    train_lda_petuum,
    train_lr_distml,
    train_lr_mllib,
    train_lr_petuum,
    train_lr_ps_pushpull,
)
from repro.data import sparse_classification, synthetic_corpus
from repro.ml import train_lda, train_logistic_regression


@pytest.fixture(scope="module")
def lr_data():
    rows, _ = sparse_classification(300, 4000, 15, seed=33)
    return rows


@pytest.fixture(scope="module")
def lda_data():
    docs, _ = synthetic_corpus(60, 120, n_topics=4, doc_length=25, seed=33)
    return docs


def test_mllib_breakdown_covers_iteration(make_ps2, lr_data):
    result = train_lr_mllib(make_ps2(), lr_data, 4000, n_iterations=4,
                            batch_fraction=0.3, seed=33)
    breakdown = result.extras["breakdown"]
    assert set(breakdown) == {"broadcast", "gradient", "aggregation", "update"}
    assert all(v >= 0 for v in breakdown.values())
    assert sum(breakdown.values()) <= result.elapsed + 1e-9


def test_mllib_aggregation_dominates_at_high_dim(make_ps2):
    """Figure 1(b): the driver-side communication dominates big models."""
    rows, _ = sparse_classification(200, 60000, 10, seed=1)
    result = train_lr_mllib(make_ps2(n_executors=8), rows, 60000,
                            n_iterations=3, batch_fraction=0.3, seed=1)
    b = result.extras["breakdown"]
    comm = b["broadcast"] + b["aggregation"]
    assert comm > b["gradient"] + b["update"]


def test_mllib_loss_matches_ps2(make_ps2, lr_data):
    """Same SGD on both architectures: identical loss trajectories."""
    kwargs = dict(n_iterations=4, batch_fraction=0.3, seed=33)
    a = train_logistic_regression(make_ps2(), lr_data, 4000, optimizer="sgd",
                                  **kwargs)
    b = train_lr_mllib(make_ps2(), lr_data, 4000, optimizer="sgd", **kwargs)
    for (_ta, la), (_tb, lb) in zip(a.history, b.history):
        assert la == pytest.approx(lb, rel=1e-9)


def test_mllib_unknown_optimizer(make_ps2, lr_data):
    from repro.common.errors import ConfigError

    with pytest.raises(ConfigError):
        train_lr_mllib(make_ps2(), lr_data, 4000, optimizer="ftrl")


def test_mllib_target_loss_stops(make_ps2, lr_data):
    result = train_lr_mllib(make_ps2(), lr_data, 4000, n_iterations=60,
                            batch_fraction=0.5, seed=33, target_loss=0.6,
                            learning_rate=1.0)
    assert result.iterations < 60


def test_petuum_converges_but_pulls_dense(make_ps2, lr_data):
    ctx = make_ps2()
    result = train_lr_petuum(ctx, lr_data, 4000, n_iterations=6,
                             batch_fraction=0.3, seed=33, learning_rate=1.0)
    assert result.final_loss < result.history[0][1] + 1e-9
    # Dense pulls: ~dim float64 values per worker per iteration.
    pulled = ctx.metrics.bytes_for_tag("pull:resp")
    assert pulled > 6 * 4 * 4000 * 8  # iters * workers * dim * 8


def test_ps2_pulls_less_than_petuum(make_ps2, lr_data):
    kwargs = dict(n_iterations=5, batch_fraction=0.1, seed=33)
    ctx_a = make_ps2()
    train_logistic_regression(ctx_a, lr_data, 4000, optimizer="sgd", **kwargs)
    ctx_b = make_ps2()
    train_lr_petuum(ctx_b, lr_data, 4000, **kwargs)
    assert ctx_a.metrics.bytes_for_tag("pull:resp") < \
        ctx_b.metrics.bytes_for_tag("pull:resp")


def test_distml_stays_flat_where_ps2_converges(make_ps2, lr_data):
    """Figure 10(a): DistML's loss hovers at its starting value while the
    synchronized systems descend."""
    kwargs = dict(n_iterations=12, batch_fraction=0.3, seed=33)
    sane = train_logistic_regression(make_ps2(), lr_data, 4000,
                                     optimizer="sgd", **kwargs)
    broken = train_lr_distml(make_ps2(), lr_data, 4000,
                             learning_rate=0.618, **kwargs)
    assert sane.final_loss < 0.95 * np.log(2)
    # DistML never makes sustained progress: every recorded loss stays in
    # a band around log(2).
    distml_losses = [l for _t, l in broken.history]
    assert min(distml_losses) > 0.8 * np.log(2)


def test_pushpull_sgd_variant(make_ps2, lr_data):
    result = train_lr_ps_pushpull(make_ps2(), lr_data, 4000, optimizer="sgd",
                                  n_iterations=3, batch_fraction=0.3, seed=33)
    assert result.system == "PS-SGD"
    assert len(result.history) == 3


def test_pushpull_rejects_unknown_optimizer(make_ps2, lr_data):
    from repro.common.errors import ConfigError

    with pytest.raises(ConfigError):
        train_lr_ps_pushpull(make_ps2(), lr_data, 4000, optimizer="lbfgs")


def test_lda_mllib_matches_ps2_statistics(make_ps2, lda_data):
    a = train_lda(make_ps2(), lda_data, 120, n_topics=4, n_iterations=3,
                  seed=33)
    b = train_lda_mllib(make_ps2(), lda_data, 120, n_topics=4,
                        n_iterations=3, seed=33)
    for (_ta, la), (_tb, lb) in zip(a.history, b.history):
        assert la == pytest.approx(lb, rel=1e-9)


def test_lda_mllib_slower_than_ps2(make_ps2):
    """With a model wide enough that bytes dominate round-trip latency,
    broadcasting the full word-topic matrix loses to sparse PS pulls."""
    docs, _ = synthetic_corpus(60, 3000, n_topics=6, doc_length=25, seed=33)
    a = train_lda(make_ps2(), docs, 3000, n_topics=32, n_iterations=3,
                  seed=33)
    b = train_lda_mllib(make_ps2(), docs, 3000, n_topics=32,
                        n_iterations=3, seed=33)
    assert b.elapsed > a.elapsed


def test_lda_wrappers_label_systems(make_ps2, lda_data):
    glint = train_lda_glint(make_ps2(), lda_data, 120, n_topics=4,
                            n_iterations=2, seed=1)
    petuum = train_lda_petuum(make_ps2(), lda_data, 120, n_topics=4,
                              n_iterations=2, seed=1)
    assert glint.system == "Glint-LDA"
    assert petuum.system == "Petuum-LDA"


# -- ring allreduce --------------------------------------------------------------

def test_ring_allreduce_synchronizes(cluster):
    executors = cluster.executors
    cluster.clock.advance(executors[0], 1.0)
    end = ring_allreduce(cluster, executors, nbytes=1000)
    for node in executors:
        assert cluster.clock.now(node) == pytest.approx(end)
    assert end > 1.0


def test_ring_allreduce_scales_with_bytes(cluster):
    executors = cluster.executors
    t0 = ring_allreduce(cluster, executors, nbytes=10**6)
    small = t0
    t1 = ring_allreduce(cluster, executors, nbytes=10**8)
    assert t1 - small > small  # the big one costs much more


def test_ring_allreduce_single_node(cluster):
    node = cluster.executors[0]
    assert ring_allreduce(cluster, [node], nbytes=100) == \
        cluster.clock.now(node)
