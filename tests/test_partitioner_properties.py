"""Property-based tests: partitioning, co-location and replica routing.

The invariants replication leans on, stated as properties:

1. every column is owned by exactly ONE primary server, and every view of
   the mapping (``position_of``/``server_of``/``owned_ranges``/
   ``shards_for_row``/``split_indices``) agrees;
2. ``derive()`` siblings are co-located (same pool, layout and rotation),
   so fan-out version keys and kernel operands always share shard keys;
3. the read router only ever lands a request on the primary or a member
   of the key's valid replica set, and marks reroutes with ``replica_of``;
4. rebalance sweeps (promote/demote/migrate) never change primary
   ownership or lose data — coverage is preserved under any heat history.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig
from repro.core.context import PS2Context
from repro.ps import messages
from repro.ps.client import PSClient
from repro.ps.master import PSMaster
from repro.ps.partitioner import ColumnLayout


layouts = st.builds(
    ColumnLayout,
    st.integers(min_value=1, max_value=200),  # dim
    st.integers(min_value=1, max_value=8),    # n_servers
    rotation=st.integers(min_value=0, max_value=7),
    block=st.integers(min_value=1, max_value=8),
)


# -- 1: exactly-once primary ownership ----------------------------------------


@given(layout=layouts)
@settings(max_examples=60, deadline=None)
def test_every_column_owned_by_exactly_one_primary(layout):
    owners = np.full(layout.dim, -1, dtype=int)
    for server_index in range(layout.n_servers):
        for start, stop in layout.owned_ranges(server_index):
            assert 0 <= start < stop <= layout.dim
            # No column claimed twice across all owned_ranges.
            assert np.all(owners[start:stop] == -1)
            owners[start:stop] = server_index
    # No column left unowned, and server_of agrees column by column.
    assert np.all(owners >= 0)
    for column in range(layout.dim):
        assert layout.server_of(column) == owners[column]
        position = layout.position_of(column)
        start, stop = layout.range_of_position(position)
        assert start <= column < stop


@given(layout=layouts)
@settings(max_examples=60, deadline=None)
def test_shards_for_row_tile_the_dimension(layout):
    shards = layout.shards_for_row(0)
    spans = sorted((start, stop) for _server, start, stop in shards)
    assert spans[0][0] == 0 and spans[-1][1] == layout.dim
    assert all(a_stop == b_start for (_a, a_stop), (b_start, _b)
               in zip(spans, spans[1:]))
    # Shard owners match the primary mapping.
    for server_index, start, stop in shards:
        assert layout.server_of(start) == server_index
        assert layout.server_of(stop - 1) == server_index


@given(layout=layouts, data=st.data())
@settings(max_examples=60, deadline=None)
def test_split_indices_partitions_and_preserves_order(layout, data):
    indices = data.draw(st.lists(
        st.integers(min_value=0, max_value=layout.dim - 1),
        min_size=0, max_size=50, unique=True,
    ))
    groups = layout.split_indices(indices)
    # A partition: disjoint groups whose union is the sorted input...
    rejoined = [i for group in groups.values() for i in group]
    assert sorted(rejoined) == sorted(indices)
    # ...each index grouped under its owning server...
    for server_index, group in groups.items():
        assert all(layout.server_of(int(i)) == server_index for i in group)
        assert list(group) == sorted(group)
    # ...and iteration order follows ascending column ranges, so the
    # concatenation IS the sorted index sequence (clients rely on this).
    assert rejoined == sorted(indices)


# -- 2: derive() co-location --------------------------------------------------


@given(
    dim=st.integers(min_value=1, max_value=120),
    n_servers=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_derive_siblings_are_co_located(dim, n_servers):
    ps2 = PS2Context(config=ClusterConfig(
        n_executors=2, n_servers=n_servers, seed=3,
    ))
    a = ps2.dense(dim, rows=3)
    b = a.derive()
    c = b.derive()
    # Same pool: shard keys (matrix_id, server) coincide for every slice.
    assert b.matrix_id == a.matrix_id and c.matrix_id == a.matrix_id
    assert len({a.row, b.row, c.row}) == 3
    assert a.layout.same_layout(b.layout)
    assert a.layout.same_layout(c.layout)
    # An independent allocation need not share the rotation — only the
    # derive chain guarantees co-location.
    other = ps2.dense(dim)
    assert other.matrix_id != a.matrix_id


# -- 3 & 4: replica sets vs routing, rebalance preserves coverage -------------


def _replication_rig(n_servers, replication_factor):
    cluster = Cluster(ClusterConfig(
        n_executors=2, n_servers=n_servers, seed=42,
        replication="topk", hot_key_fraction=0.2,
        replication_factor=replication_factor,
    ))
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    return cluster, master, client


@given(
    n_servers=st.integers(min_value=2, max_value=6),
    replication_factor=st.integers(min_value=0, max_value=3),
    hot_position=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=20, deadline=None)
def test_route_read_lands_on_primary_or_valid_replica(
        n_servers, replication_factor, hot_position):
    dim = 12 * n_servers
    cluster, master, client = _replication_rig(n_servers, replication_factor)
    manager = master.replication
    m = master.create_matrix(dim)
    client.push_assign(m, 0, np.arange(float(dim)))
    layout = master.layout(m)
    start, stop = layout.range_of_position(hot_position % n_servers)
    for _ in range(3):
        client.pull_range(m, 0, start, stop)
    manager.rebalance()
    primary = layout.server_of(start)
    replicas = manager.replica_set(m, primary)
    # The replica set never contains the primary and respects the factor.
    assert primary not in replicas
    limit = replication_factor if replication_factor > 0 else n_servers - 1
    assert len(replicas) <= min(limit, n_servers - 1)
    # Routing responses stay inside {primary} + replica set, reroutes are
    # marked, and every holder really has a valid copy.
    epoch = master.server(primary).epoch
    for _ in range(4):
        request = messages.PullRangeRequest(primary, m, 0, start, stop)
        routed = manager.route_read(request)
        assert routed.server_index in [primary] + replicas
        if routed.server_index != primary:
            assert routed.replica_of == primary
            assert master.server(routed.server_index).has_replica(
                m, primary, epoch)
        else:
            assert routed.replica_of is None
    # And the data read through the client is the data written.
    assert np.allclose(client.pull_range(m, 0, start, stop),
                       np.arange(float(dim))[start:stop])


@given(
    n_servers=st.integers(min_value=2, max_value=5),
    replication_factor=st.integers(min_value=0, max_value=2),
    data=st.data(),
)
@settings(max_examples=15, deadline=None)
def test_rebalance_history_preserves_coverage(n_servers, replication_factor,
                                              data):
    dim = 10 * n_servers
    cluster, master, client = _replication_rig(n_servers, replication_factor)
    manager = master.replication
    m = master.create_matrix(dim)
    expected = np.zeros(dim)
    client.push_assign(m, 0, expected)
    steps = data.draw(st.lists(
        st.tuples(
            st.sampled_from(["push", "pull", "rebalance"]),
            st.integers(min_value=0, max_value=n_servers - 1),
        ),
        min_size=1, max_size=12,
    ))
    layout = master.layout(m)
    for op, position in steps:
        start, stop = layout.range_of_position(position)
        if op == "push":
            delta = np.ones(stop - start)
            client.push_add(m, 0, delta, indices=list(range(start, stop)))
            expected[start:stop] += delta
        elif op == "pull":
            client.pull_range(m, 0, start, stop)
        else:
            manager.rebalance()
    manager.rebalance()
    # Primary ownership never moved...
    assert master.layout(m).same_layout(layout)
    # ...every surviving replica entry is a valid, installed copy...
    for (matrix_id, primary_index), targets in manager.replicas.items():
        epoch = master.server(primary_index).epoch
        for replica_index in manager.replica_set(matrix_id, primary_index):
            assert replica_index != primary_index
            assert replica_index in targets
            assert master.server(replica_index).has_replica(
                matrix_id, primary_index, epoch)
    # ...and no data was lost or duplicated through any migrate/demote.
    assert np.allclose(client.pull_row(m, 0), expected)
