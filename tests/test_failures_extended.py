"""Executor failure recovery and histogram-subtraction equivalence tests."""

import numpy as np
import pytest

from repro.common.errors import ClusterError, JobAbortedError
from repro.data import dense_tabular, sparse_classification
from repro.ml import train_gbdt, train_logistic_regression
from repro.ml.gbdt import _SubtractionHistExchange


# -- executor failure (Section 5.3, "Executor Failure") -------------------------

def test_fail_executor_redistributes_partitions(make_ps2):
    ps2 = make_ps2(n_executors=4)
    data = ps2.parallelize(range(100))
    assert data.sum() == 4950.0
    ps2.cluster.fail_executor("executor-1")
    assert ps2.cluster.alive_executors == \
        ["executor-0", "executor-2", "executor-3"]
    # The job still completes, with the dead executor's partitions moved.
    assert data.sum() == 4950.0
    assert ps2.metrics.counters["partition-reloads"] > 0


def test_executor_recovery_charges_input_reload(make_ps2):
    ps2 = make_ps2(n_executors=4)
    data = ps2.parallelize([np.zeros(1000)] * 8, n_partitions=4)
    data.count()
    before = ps2.metrics.bytes_for_tag("executor-recovery")
    ps2.cluster.fail_executor("executor-2")
    data.count()
    moved = ps2.metrics.bytes_for_tag("executor-recovery") - before
    # Partition 2 held two 8KB arrays; its reload ships them again.
    assert moved >= 16000


def test_restore_executor(make_ps2):
    ps2 = make_ps2(n_executors=3)
    ps2.cluster.fail_executor("executor-0")
    ps2.cluster.restore_executor("executor-0")
    assert "executor-0" in ps2.cluster.alive_executors


def test_fail_non_executor_rejected(make_ps2):
    ps2 = make_ps2()
    with pytest.raises(ClusterError):
        ps2.cluster.fail_executor("server-0")
    with pytest.raises(ClusterError):
        ps2.cluster.fail_executor("driver")


def test_all_executors_dead_aborts(make_ps2):
    ps2 = make_ps2(n_executors=2)
    data = ps2.parallelize(range(4))
    ps2.cluster.fail_executor("executor-0")
    ps2.cluster.fail_executor("executor-1")
    with pytest.raises(JobAbortedError):
        data.count()


def test_training_survives_executor_failure_mid_run(make_ps2):
    """Kill an executor between LR iterations; training completes and the
    statistics are unchanged (data is reloaded, not lost)."""
    rows, _ = sparse_classification(200, 1000, 10, seed=41)

    reference = train_logistic_regression(
        make_ps2(), rows, 1000, optimizer="sgd", n_iterations=6,
        batch_fraction=0.5, seed=41,
    )

    ps2 = make_ps2()
    first = train_logistic_regression(
        ps2, rows, 1000, optimizer="sgd", n_iterations=3,
        batch_fraction=0.5, seed=41,
    )
    assert first.iterations == 3
    ps2.cluster.fail_executor("executor-3")
    # Continue on the same cluster: a fresh run converges fine with 3 nodes.
    cont = train_logistic_regression(
        ps2, rows, 1000, optimizer="sgd", n_iterations=3,
        batch_fraction=0.5, seed=41,
    )
    assert cont.iterations == 3
    assert reference.final_loss < np.log(2)


# -- GBDT histogram subtraction ----------------------------------------------------

@pytest.fixture(scope="module")
def tabular():
    return dense_tabular(400, 8, seed=37, noise=0.05)


def test_subtraction_matches_plain_trees(make_ps2, tabular):
    X, y = tabular
    kwargs = dict(n_trees=4, max_depth=3, n_bins=8, seed=3)
    plain = train_gbdt(make_ps2(), X, y, method="ps2", **kwargs)
    subtracted = train_gbdt(make_ps2(), X, y, method="ps2",
                            hist_subtraction=True, **kwargs)
    # Exact in exact arithmetic; float reassociation (parent-sum minus
    # child-sum vs direct build) can flip near-tie splits, so compare
    # trajectories with tolerance.
    for (_ta, la), (_tb, lb) in zip(plain.history, subtracted.history):
        assert la == pytest.approx(lb, rel=5e-3)


def test_subtraction_reduces_histogram_traffic(make_ps2, tabular):
    X, y = tabular
    kwargs = dict(n_trees=3, max_depth=4, n_bins=16, seed=3)
    ctx_plain = make_ps2()
    plain = train_gbdt(ctx_plain, X, y, method="ps2", **kwargs)
    ctx_sub = make_ps2()
    subtracted = train_gbdt(ctx_sub, X, y, method="ps2",
                            hist_subtraction=True, **kwargs)
    plain_push = ctx_plain.metrics.bytes_for_tag("push:req")
    sub_push = ctx_sub.metrics.bytes_for_tag("push:req")
    assert sub_push < 0.8 * plain_push
    assert subtracted.elapsed < plain.elapsed


def test_subtraction_requires_ps2_method(make_ps2, tabular):
    from repro.common.errors import ConfigError

    X, y = tabular
    with pytest.raises(ConfigError):
        train_gbdt(make_ps2(), X, y, method="allreduce",
                   hist_subtraction=True)


def test_subtraction_frees_node_histograms_between_trees(make_ps2, tabular):
    X, y = tabular
    ps2 = make_ps2()
    result = train_gbdt(ps2, X, y, n_trees=3, max_depth=3, n_bins=8,
                        method="ps2", hist_subtraction=True, seed=3)
    assert result.iterations == 3
    # The exchange holds only the last tree's leftovers; pools were recycled
    # rather than growing 2 rows per node per tree.
    model = result.extras["model"]
    assert len(model.trees) == 3


def test_subtraction_exchange_start_tree_resets(make_ps2):
    ps2 = make_ps2()
    anchor = ps2.dense(16, rows=4, block=4)
    exchange = _SubtractionHistExchange(ps2, anchor, 16, 4, 1.0, 1e-6)
    grad = anchor.derive()
    hess = anchor.derive()
    exchange.hists[0] = (grad, hess)
    exchange.start_tree()
    assert exchange.hists == {}
