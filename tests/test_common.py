"""Tests for shared utilities: sizeof, RNG registry, error hierarchy."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import errors
from repro.common.rng import RngRegistry, generator
from repro.common.sizeof import (
    FLOAT_BYTES,
    MESSAGE_OVERHEAD_BYTES,
    dense_row_bytes,
    message_bytes,
    sizeof,
    sparse_row_bytes,
)


# -- sizeof ---------------------------------------------------------------------

def test_sizeof_none_is_zero():
    assert sizeof(None) == 0


def test_sizeof_ndarray_is_nbytes():
    assert sizeof(np.zeros(10)) == 80
    assert sizeof(np.zeros(10, dtype=np.float32)) == 40


def test_sizeof_scalars():
    assert sizeof(1) == FLOAT_BYTES
    assert sizeof(1.5) == FLOAT_BYTES
    assert sizeof(True) == FLOAT_BYTES
    assert sizeof(np.float64(2.0)) == FLOAT_BYTES


def test_sizeof_strings_and_bytes():
    assert sizeof("abc") == 3
    assert sizeof(b"abcd") == 4


def test_sizeof_containers_are_additive():
    assert sizeof([1, 2.0]) == 2 * FLOAT_BYTES
    assert sizeof((np.zeros(2), "ab")) == 16 + 2
    assert sizeof({"k": 1.0}) == 1 + FLOAT_BYTES


def test_sizeof_unknown_conservative():
    class Thing:
        pass

    assert sizeof(Thing()) == 256


def test_row_bytes_helpers():
    assert dense_row_bytes(10) == 80
    assert sparse_row_bytes(10) == 160
    assert message_bytes(np.zeros(1)) == 8 + MESSAGE_OVERHEAD_BYTES


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=20))
@settings(max_examples=50, deadline=None)
def test_sizeof_nonnegative_and_additive(values):
    assert sizeof(values) >= 0
    assert sizeof(values + values) == 2 * sizeof(values)


# -- rng registry ------------------------------------------------------------------

def test_same_name_same_stream():
    a = RngRegistry(5).get("x").random(4)
    b = RngRegistry(5).get("x").random(4)
    assert np.array_equal(a, b)


def test_different_names_independent():
    reg = RngRegistry(5)
    a = reg.get("x").random(4)
    b = reg.get("y").random(4)
    assert not np.array_equal(a, b)


def test_streams_order_independent():
    reg1 = RngRegistry(5)
    reg1.get("a")
    x1 = reg1.get("x").random(3)
    reg2 = RngRegistry(5)
    x2 = reg2.get("x").random(3)
    assert np.array_equal(x1, x2)


def test_get_is_cached():
    reg = RngRegistry(5)
    assert reg.get("x") is reg.get("x")


def test_spawn_is_independent():
    parent = RngRegistry(5)
    child = parent.spawn("c")
    assert not np.array_equal(
        parent.get("x").random(3), child.get("x").random(3)
    )


def test_generator_helper():
    assert np.array_equal(generator(3, "n").random(2),
                          generator(3, "n").random(2))


def test_seeds_differ():
    assert not np.array_equal(
        RngRegistry(1).get("x").random(3), RngRegistry(2).get("x").random(3)
    )


# -- error hierarchy -----------------------------------------------------------------

def test_all_errors_derive_from_repro_error():
    leaf_errors = [
        errors.ConfigError,
        errors.UnknownNodeError,
        errors.TaskError,
        errors.InjectedTaskFailure,
        errors.JobAbortedError,
        errors.MatrixNotFoundError,
        errors.ServerDownError,
        errors.NotColocatedError,
        errors.PoolExhaustedError,
        errors.DimensionMismatchError,
    ]
    for err in leaf_errors:
        assert issubclass(err, errors.ReproError)


def test_task_error_carries_coordinates():
    err = errors.TaskError("x", stage_id=2, partition_id=3, attempt=1)
    assert (err.stage_id, err.partition_id, err.attempt) == (2, 3, 1)


def test_layer_bases():
    assert issubclass(errors.NotColocatedError, errors.DCVError)
    assert issubclass(errors.ServerDownError, errors.PSError)
    assert issubclass(errors.JobAbortedError, errors.SparkliteError)
    assert issubclass(errors.UnknownNodeError, errors.ClusterError)
