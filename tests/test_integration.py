"""Integration tests: end-to-end orderings the paper's figures assert.

These are scaled-down versions of the benchmark experiments, kept fast
enough for the regular test suite; the full parameter sweeps live under
``benchmarks/``.
"""

import pytest

from repro.baselines import (
    train_lr_mllib,
    train_lr_petuum,
    train_lr_ps_pushpull,
)
from repro.data import sparse_classification
from repro.experiments import make_context
from repro.ml import train_logistic_regression


@pytest.fixture(scope="module")
def medium_lr():
    rows, _ = sparse_classification(600, 40000, 20, seed=55)
    return rows


KW = dict(n_iterations=5, batch_fraction=0.1, seed=55)


def test_figure9_ordering_ps2_ps_spark(medium_lr):
    """Figure 9(a): PS2-Adam < PS-Adam < Spark-Adam in time-to-loss."""
    ps2 = train_logistic_regression(
        make_context(seed=55), medium_lr, 40000, optimizer="adam", **KW
    )
    ps = train_lr_ps_pushpull(
        make_context(seed=55), medium_lr, 40000, optimizer="adam", **KW
    )
    spark = train_lr_mllib(
        make_context(seed=55), medium_lr, 40000, optimizer="adam", **KW
    )
    assert ps2.elapsed < ps.elapsed < spark.elapsed
    # identical statistics throughout
    assert ps2.final_loss == pytest.approx(ps.final_loss)
    assert ps2.final_loss == pytest.approx(spark.final_loss)


def test_figure10_ordering_ps2_petuum_mllib(medium_lr):
    """Figure 10: PS2 < Petuum < MLlib on LR with SGD."""
    ps2 = train_logistic_regression(
        make_context(seed=55), medium_lr, 40000, optimizer="sgd", **KW
    )
    petuum = train_lr_petuum(make_context(seed=55), medium_lr, 40000, **KW)
    mllib = train_lr_mllib(
        make_context(seed=55), medium_lr, 40000, optimizer="sgd", **KW
    )
    assert ps2.elapsed < petuum.elapsed < mllib.elapsed


def test_figure13a_more_resources_go_faster():
    """Figure 13(a): doubling workers+servers speeds PS2 up.

    CPUs are derated so per-worker compute is non-trivial relative to the
    fixed task overhead, restoring the paper's compute:overhead ratio (see
    make_context's node_flops note).
    """
    rows, _ = sparse_classification(4000, 40000, 25, seed=55)

    def run(n_executors, n_servers):
        return train_logistic_regression(
            make_context(n_executors=n_executors, n_servers=n_servers,
                         seed=55, node_flops=2e7),
            rows, 40000, optimizer="sgd", n_iterations=5,
            batch_fraction=0.5, seed=55,
        )

    base = run(5, 5)
    more_workers = run(10, 5)
    more_both = run(10, 10)
    assert more_workers.elapsed < base.elapsed
    assert more_both.elapsed < more_workers.elapsed


def test_figure13b_model_size_scaling():
    """Figure 13(b): PS2's per-iteration time grows far slower than MLlib's."""
    def per_iter(dim, trainer, **kwargs):
        rows, _ = sparse_classification(200, dim, 10, seed=3)
        result = trainer(make_context(seed=3), rows, dim,
                         n_iterations=3, batch_fraction=0.3, seed=3, **kwargs)
        return result.elapsed / 3

    small_d, big_d = 4000, 120000
    mllib_growth = (per_iter(big_d, train_lr_mllib, optimizer="sgd")
                    / per_iter(small_d, train_lr_mllib, optimizer="sgd"))
    ps2_growth = (per_iter(big_d, train_logistic_regression, optimizer="sgd")
                  / per_iter(small_d, train_logistic_regression,
                             optimizer="sgd"))
    assert mllib_growth > 2 * ps2_growth


def test_figure13c_failures_same_solution_more_time(medium_lr):
    """Figure 13(c): task failures cost time, never correctness."""
    clean = train_logistic_regression(
        make_context(seed=55, task_failure_prob=0.0), medium_lr, 40000,
        optimizer="sgd", **KW
    )
    faulty = train_logistic_regression(
        make_context(seed=55, task_failure_prob=0.15), medium_lr, 40000,
        optimizer="sgd", **KW
    )
    assert faulty.elapsed > clean.elapsed
    for (_ta, la), (_tb, lb) in zip(clean.history, faulty.history):
        assert la == pytest.approx(lb, rel=1e-9)


def test_server_failure_mid_training_recovers(medium_lr):
    """A server crash between iterations recovers from checkpoints and the
    job completes (Section 5.3's server-failure story)."""
    ctx = make_context(seed=55)
    rows = medium_lr

    # Train a bit, checkpoint, then crash a server; training continues.
    result_a = train_logistic_regression(
        ctx, rows, 40000, optimizer="sgd", n_iterations=2,
        batch_fraction=0.1, seed=55, checkpoint_every=1,
    )
    ctx.master.server(2).crash()
    weight = result_a.extras["weight"]
    pulled = weight.pull()  # transparent recovery
    assert pulled.shape == (40000,)
    assert ctx.master.checkpoints.recoveries == 1
