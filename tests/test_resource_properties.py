"""Property tests pinning the PR 7 TimelineResource fast paths.

``reserve`` grew shortcut branches (tail append/merge, extend-final,
front-gap-miss) and ``reserve_many`` inlines the two hot ones; every
shortcut claims to be a bit-identical specialization of the general
probe + ``_insert`` path.  These properties hold the claim down:

- ``reserve_many`` is EXACTLY sequential ``reserve`` (same starts, same
  interval list, same ``_busy`` float);
- capacity consumed is permutation-invariant;
- booked intervals never overlap and are strictly ordered.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resource import _MERGE_EPS, TimelineResource

jobs_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=1e-9, max_value=10, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)

# Arrivals drawn from a tiny grid force every merge/extend/gap collision
# the wide strategy above rarely hits.
clustered_jobs_strategy = st.lists(
    st.tuples(
        st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0]),
        st.sampled_from([0.25, 0.5, 1.0, 1.5]),
    ),
    min_size=1,
    max_size=16,
)

# Mix in sub-epsilon durations: they must take the general path.
epsilon_jobs_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=5, allow_nan=False),
        st.sampled_from([1e-13, 1e-12, 2e-12, 3e-12, 0.5, 1.0]),
    ),
    min_size=1,
    max_size=20,
)


def _snapshot(r):
    return list(r._starts), list(r._ends), r.busy_seconds()


def _check_reserve_many_equivalence(jobs):
    sequential = TimelineResource()
    seq_starts = [sequential.reserve(e, d) for e, d in jobs]
    bulk = TimelineResource()
    bulk_starts = bulk.reserve_many(jobs)
    # Bit-for-bit: booked starts, interval lists and the running busy
    # total — not "close", EQUAL.
    assert bulk_starts == seq_starts
    assert _snapshot(bulk) == _snapshot(sequential)


@given(jobs_strategy)
@settings(max_examples=200, deadline=None)
def test_reserve_many_equals_sequential_reserve(jobs):
    _check_reserve_many_equivalence(jobs)


@given(clustered_jobs_strategy)
@settings(max_examples=200, deadline=None)
def test_reserve_many_equals_sequential_reserve_clustered(jobs):
    _check_reserve_many_equivalence(jobs)


@given(epsilon_jobs_strategy)
@settings(max_examples=200, deadline=None)
def test_reserve_many_equals_sequential_reserve_epsilon(jobs):
    _check_reserve_many_equivalence(jobs)


@given(jobs_strategy)
@settings(max_examples=150, deadline=None)
def test_intervals_never_overlap_and_stay_sorted(jobs):
    r = TimelineResource()
    starts = r.reserve_many(jobs)
    for (earliest, _d), start in zip(jobs, starts):
        assert start >= earliest - 1e-9
    intervals = list(zip(r._starts, r._ends))
    for s, e in intervals:
        assert e > s
    for (_s0, e0), (s1, _e1) in zip(intervals, intervals[1:]):
        # Strictly increasing with real gaps: touching intervals merge.
        assert s1 - e0 > _MERGE_EPS


@given(jobs_strategy)
@settings(max_examples=100, deadline=None)
def test_busy_seconds_is_permutation_invariant(jobs):
    orders = [jobs, list(reversed(jobs))]
    if len(jobs) > 2:
        orders.append(jobs[1:] + jobs[:1])
        orders.append(sorted(jobs))
    totals = set()
    for order in orders:
        r = TimelineResource()
        r.reserve_many(order)
        totals.add(round(r.busy_seconds(), 9))
    assert len(totals) == 1


def test_exhaustive_permutations_match_everywhere():
    """Every permutation of a crafted job set produces the same capacity
    total, and reserve_many matches sequential reserve on each order."""
    jobs = [(0.0, 1.0), (0.5, 1.0), (2.5, 0.25), (0.0, 0.5)]
    totals = set()
    for perm in itertools.permutations(jobs):
        _check_reserve_many_equivalence(list(perm))
        r = TimelineResource()
        r.reserve_many(list(perm))
        totals.add(round(r.busy_seconds(), 9))
    assert len(totals) == 1


def test_reserve_many_interleaves_with_reserve():
    """A bulk call after singles (and vice versa) continues the same
    timeline state the sequential path would hold."""
    sequential = TimelineResource()
    bulk = TimelineResource()
    first = [(0.0, 1.0), (0.2, 0.5)]
    second = [(0.1, 0.3), (5.0, 1.0), (1.0, 0.5)]
    seq_starts = [sequential.reserve(e, d) for e, d in first + second]
    bulk_starts = bulk.reserve_many(first)
    bulk_starts += [bulk.reserve(e, d) for e, d in second[:1]]
    bulk_starts += bulk.reserve_many(second[1:])
    assert bulk_starts == seq_starts
    assert _snapshot(bulk) == _snapshot(sequential)


def test_reserve_chain_packs_back_to_back():
    r = TimelineResource()
    starts = r.reserve_chain(0.0, [1.0, 0.5, 0.25])
    assert starts == [0.0, 1.0, 1.5]
    assert len(r) == 1
    assert r.horizon() == 1.75


def test_reserve_chain_straddles_existing_booking():
    r = TimelineResource()
    r.reserve(1.0, 1.0)
    # First link fits the front gap; the second collides with [1, 2) and
    # queues behind it — exactly as sequential reserve would.
    starts = r.reserve_chain(0.0, [1.0, 1.0])
    assert starts == [0.0, 2.0]
    assert r.horizon() == 3.0
