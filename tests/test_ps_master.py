"""Unit tests for the PS master and checkpoint manager."""

import numpy as np
import pytest

from repro.common.errors import MatrixNotFoundError
from repro.ps.checkpoint import CheckpointManager
from repro.ps.master import PSMaster
from repro.ps.partitioner import ColumnLayout, RowLayout


@pytest.fixture
def master(cluster):
    return PSMaster(cluster)


def test_create_matrix_default_layout(master):
    m = master.create_matrix(30, n_rows=2)
    info = master.info(m)
    assert info.dim == 30 and info.n_rows == 2
    assert isinstance(info.layout, ColumnLayout)
    for server in master.servers:
        assert server.has_shard(m, 0)
        assert server.has_shard(m, 1)


def test_create_matrix_row_layout(master):
    m = master.create_matrix(30, n_rows=3, layout=RowLayout(30, 3))
    assert master.server(0).has_shard(m, 0)
    assert not master.server(0).has_shard(m, 1)
    assert master.server(1).has_shard(m, 1)


def test_matrix_ids_are_unique(master):
    a = master.create_matrix(10)
    b = master.create_matrix(10)
    assert a != b


def test_unknown_matrix(master):
    with pytest.raises(MatrixNotFoundError):
        master.info(999)


def test_free_matrix(master):
    m = master.create_matrix(10)
    master.free_matrix(m)
    assert not master.server(0).has_shard(m, 0)
    with pytest.raises(MatrixNotFoundError):
        master.layout(m)


def test_allocation_charges_control_messages(cluster):
    master = PSMaster(cluster)
    before = cluster.metrics.messages_by_tag.get("ps-allocate", 0)
    master.create_matrix(30)
    after = cluster.metrics.messages_by_tag["ps-allocate"]
    assert after - before == len(cluster.servers)


def test_random_init_independent_of_client_count(cluster):
    master = PSMaster(cluster)
    m = master.create_matrix(12, init="random", scale=1.0)
    values = np.concatenate(
        [master.server(i).shard(m, 0).values for i in range(3)]
    )
    assert np.any(values != 0)


def test_recover_without_checkpoint_reinitializes(master):
    """A crash before the first checkpoint recovers to fresh shards."""
    m = master.create_matrix(10)
    master.server(0).shard(m, 0).values[:] = 7.0
    master.server(0).crash()
    server = master.recover(0)
    assert server.is_alive()
    assert server.has_shard(m, 0)
    # The un-checkpointed updates are lost; the shard is back at its
    # deterministic initial (zero) state.
    assert np.all(server.shard(m, 0).values == 0.0)
    assert master.checkpoints.recoveries == 0


def test_recover_replaces_server_object(master):
    master.create_matrix(10)
    failed = master.server(0)
    failed.crash()
    replacement = master.recover(0)
    assert replacement is not failed
    assert master.server(0) is replacement
    assert replacement.node_id == failed.node_id


def test_recover_rebuilds_post_checkpoint_matrix(master):
    """Matrices created after the last checkpoint survive a crash."""
    old = master.create_matrix(12)
    master.server(0).shard(old, 0).values[:] = 3.0
    master.checkpoint_all()
    new = master.create_matrix(8, init="random", scale=1.0)
    master.server(0).crash()
    server = master.recover(0)
    assert np.all(server.shard(old, 0).values == 3.0)  # from the snapshot
    assert server.has_shard(new, 0)  # re-initialized from metadata


def test_recover_drops_freed_matrix(master):
    kept = master.create_matrix(12)
    freed = master.create_matrix(12)
    master.checkpoint_all()
    master.free_matrix(freed)
    master.server(0).crash()
    server = master.recover(0)
    assert server.has_shard(kept, 0)
    assert not server.has_shard(freed, 0)


def test_repair_live_server_keeps_updates(master):
    """repair() on a live server only backfills missing shards."""
    m = master.create_matrix(12)
    server = master.server(0)
    server.shard(m, 0).values[:] = 4.0
    extra = master.create_matrix(6)
    server.drop_matrix(extra)  # simulate a stale shard set
    repaired = master.repair(0)
    assert repaired is server  # no replacement process
    assert np.all(server.shard(m, 0).values == 4.0)  # live updates kept
    assert server.has_shard(extra, 0)


def test_recover_restores_latest_checkpoint(master):
    m = master.create_matrix(12)
    server = master.server(0)
    shard = server.shard(m, 0)
    shard.values[:] = 5.0
    master.checkpoint_all()
    shard.values[:] = 9.0  # updates after the checkpoint are lost
    server.crash()
    master.recover(0)
    assert np.all(master.server(0).shard(m, 0).values == 5.0)


def test_checkpoint_costs_time(cluster):
    master = PSMaster(cluster)
    master.create_matrix(100000)
    t0 = cluster.clock.now(master.server(0).node_id)
    master.checkpoint_all()
    assert cluster.clock.now(master.server(0).node_id) > t0
    assert master.checkpoints.checkpoints_taken == len(master.servers)


def test_checkpoint_manager_has_checkpoint(cluster):
    master = PSMaster(cluster)
    manager = master.checkpoints
    assert not manager.has_checkpoint(0)
    master.create_matrix(10)
    manager.checkpoint_server(master.server(0))
    assert manager.has_checkpoint(0)
    assert not manager.has_checkpoint(1)


def test_checkpoint_storage_bandwidth_scaling(cluster):
    master = PSMaster(cluster)
    master.create_matrix(300000)
    slow = CheckpointManager(cluster, storage_bandwidth=1e6)
    fast = CheckpointManager(cluster, storage_bandwidth=1e9)
    server = master.server(0)
    t0 = cluster.clock.now(server.node_id)
    slow.checkpoint_server(server)
    slow_cost = cluster.clock.now(server.node_id) - t0
    t0 = cluster.clock.now(server.node_id)
    fast.checkpoint_server(server)
    fast_cost = cluster.clock.now(server.node_id) - t0
    assert slow_cost > fast_cost
