"""Lazy embedding tables and the elastic PS tier (live shard migration).

The two PS-layer contracts the serving tier stands on:

1. **get_or_create determinism** — a lazy row's init values come from a
   one-shot per-(matrix, row) RNG stream with no server index in its
   name, so creation, re-materialization after a crash and re-creation
   after a shard migration all produce bit-identical vectors; and the
   master's created-row registry is create-once across any number of
   racing workers.
2. **resize correctness** — ``resize_servers`` migrates every shard
   under a same-shape layout without losing a float or a version
   counter, retires ghost heat-ledger keys, invalidates stale
   checkpoints (taking a fresh sweep when checkpointing was in play),
   and fans topology-change invalidation out to every routing table and
   worker cache; a server crashing mid-migration is recovered in place
   and the sweep completes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.common.errors import PSError
from repro.config import ClusterConfig
from repro.core.context import PS2Context
from repro.ps import messages
from repro.ps.client import PSClient
from repro.ps.master import PSMaster


def _ctx(n_executors=2, n_servers=3, seed=42, **kwargs):
    return PS2Context(config=ClusterConfig(
        n_executors=n_executors, n_servers=n_servers, seed=seed, **kwargs))


def _client(ctx, worker=0):
    return ctx.client_for(ctx.cluster.executors[worker])


# -- lazy tables: get_or_create ----------------------------------------------


def test_pull_or_create_materializes_rows():
    ctx = _ctx()
    table = ctx.master.create_table(8, init="random", scale=0.5)
    info = ctx.master.info(table)
    assert info.lazy and info.n_rows == 0 and info.created_rows == set()
    values = _client(ctx).pull_or_create(table, [0, 5, 2])
    assert values.shape == (3, 8)
    assert np.any(values != 0.0)  # random init engaged
    assert info.created_rows == {0, 2, 5}
    assert info.n_rows == 6  # 1 + max created id
    assert ctx.metrics.counters["lazy-creates"] == 3


def test_pull_or_create_second_pull_creates_nothing():
    ctx = _ctx()
    table = ctx.master.create_table(8)
    first = _client(ctx).pull_or_create(table, [1, 3])
    again = _client(ctx).pull_or_create(table, [3, 1])
    assert np.allclose(first[0], again[1]) and np.allclose(first[1], again[0])
    assert ctx.metrics.counters["lazy-creates"] == 2  # no re-creation


@given(
    ids_a=st.lists(st.integers(min_value=0, max_value=40),
                   min_size=1, max_size=12),
    ids_b=st.lists(st.integers(min_value=0, max_value=40),
                   min_size=1, max_size=12),
)
@settings(max_examples=25, deadline=None)
def test_create_once_across_racing_workers(ids_a, ids_b):
    """Two workers racing on overlapping id sets converge on exactly one
    creation per distinct id, and both read identical values."""
    ctx = _ctx()
    table = ctx.master.create_table(4)
    a = _client(ctx, 0).pull_or_create(table, ids_a)
    b = _client(ctx, 1).pull_or_create(table, ids_b)
    distinct = set(ids_a) | set(ids_b)
    assert ctx.master.info(table).created_rows == distinct
    assert ctx.metrics.counters["lazy-creates"] == len(distinct)
    by_id = {row: a[pos] for pos, row in enumerate(ids_a)}
    for pos, row in enumerate(ids_b):
        if row in by_id:
            assert np.array_equal(by_id[row], b[pos])


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_lazy_init_is_deterministic_across_recovery(seed):
    """Crash the owning server before any checkpoint: the re-created row
    must be bit-identical to the original creation draw."""
    ctx = _ctx(seed=seed)
    table = ctx.master.create_table(6)
    client = _client(ctx)
    before = client.pull_or_create(table, [0, 1, 2])
    for server in ctx.master.servers:
        server.crash()
        ctx.master.recover(server.server_index)
    after = client.pull_or_create(table, [0, 1, 2])
    assert np.array_equal(before, after)
    # Recovery re-materialized from the registry, not the create path.
    assert ctx.metrics.counters["lazy-creates"] == 3


def test_lazy_init_is_deterministic_across_migration():
    ctx = _ctx(n_servers=2)
    table = ctx.master.create_table(6)
    client = _client(ctx)
    before = client.pull_or_create(table, list(range(8)))
    ctx.master.resize_servers(5)  # every row changes owner
    after = client.pull_or_create(table, list(range(8)))
    assert np.array_equal(before, after)
    assert ctx.metrics.counters["lazy-creates"] == 8


def test_lazy_updates_survive_migration():
    ctx = _ctx(n_servers=2)
    table = ctx.master.create_table(4)
    client = _client(ctx)
    client.pull_or_create(table, [0, 1, 2, 3])
    client.push_add(table, 2, np.full(4, 10.0))
    expected = client.pull_or_create(table, [2])
    ctx.master.resize_servers(4)
    assert np.array_equal(client.pull_or_create(table, [2]), expected)


def test_pull_or_create_rejects_dense_matrix():
    ctx = _ctx()
    m = ctx.master.create_matrix(8, n_rows=2)
    with pytest.raises(PSError):
        _client(ctx).pull_or_create(m, [0])
    with pytest.raises(PSError):
        ctx.master.register_lazy_rows(m, [0])


def test_pull_or_create_wire_accounting():
    """Creation and plain re-read cost identical, deterministic bytes:
    the response always carries the created-marker word."""
    ctx = _ctx()
    table = ctx.master.create_table(8)
    client = _client(ctx)
    request = messages.PullOrCreateRequest(0, table, 0, 8)
    assert request.payload_bytes() == 2 * messages.INDEX_BYTES \
        + messages.FLOAT_BYTES
    assert request.response_bytes() == messages.RESPONSE_HEADER_BYTES \
        + messages.INDEX_BYTES + 8 * messages.FLOAT_BYTES

    before = ctx.metrics.total_bytes()
    client.pull_or_create(table, [0])
    create_cost = ctx.metrics.total_bytes() - before
    before = ctx.metrics.total_bytes()
    client.pull_or_create(table, [0])
    reread_cost = ctx.metrics.total_bytes() - before
    # The re-read skips only the one registration message to the master.
    assert create_cost > reread_cost > 0
    assert ctx.metrics.bytes_for_tag("lazy-register") > 0
    assert ctx.metrics.bytes_for_tag("pull-create:req") > 0
    assert ctx.metrics.bytes_for_tag("pull-create:resp") > 0


def test_pull_or_create_is_never_replica_routed():
    from repro.ps import replication
    assert messages.PullOrCreateRequest not in replication.READ_TYPES
    assert messages.PullOrCreateRequest not in replication.MUTATION_TYPES


# -- elastic resize: correctness ----------------------------------------------


def _dense_with_values(ctx, dim=30):
    m = ctx.master.create_matrix(dim, n_rows=2)
    client = _client(ctx)
    client.push_assign(m, 0, np.arange(float(dim)))
    client.push_assign(m, 1, np.arange(float(dim)) * 2.0)
    return m, client


def test_resize_grow_preserves_values():
    ctx = _ctx(n_servers=2)
    m, client = _dense_with_values(ctx)
    ctx.master.resize_servers(5)
    assert ctx.master.n_servers == 5
    assert len(ctx.cluster.servers) == 5
    assert ctx.master.layout(m).n_servers == 5
    assert np.allclose(client.pull_row(m, 0), np.arange(30.0))
    assert np.allclose(client.pull_row(m, 1), np.arange(30.0) * 2.0)
    assert ctx.metrics.counters["elastic-resizes"] == 1
    assert ctx.metrics.counters["migrated-shard-slices"] > 0
    assert ctx.metrics.bytes_for_tag("shard-migrate") > 0


def test_resize_shrink_preserves_values():
    ctx = _ctx(n_servers=4)
    m, client = _dense_with_values(ctx)
    ctx.master.resize_servers(2)
    assert ctx.master.n_servers == 2
    assert len(ctx.cluster.servers) == 2
    assert np.allclose(client.pull_row(m, 0), np.arange(30.0))
    assert np.allclose(client.pull_row(m, 1), np.arange(30.0) * 2.0)


def test_resize_to_one_server_and_back():
    ctx = _ctx(n_servers=3)
    m, client = _dense_with_values(ctx)
    ctx.master.resize_servers(1)
    assert np.allclose(client.pull_row(m, 0), np.arange(30.0))
    ctx.master.resize_servers(3)
    assert np.allclose(client.pull_row(m, 0), np.arange(30.0))
    with pytest.raises(PSError):
        ctx.master.resize_servers(0)


def test_resize_noop_changes_nothing():
    ctx = _ctx(n_servers=3)
    epoch = ctx.master.topology_epoch
    ctx.master.resize_servers(3)
    assert ctx.master.topology_epoch == epoch
    assert "elastic-resizes" not in ctx.metrics.counters


def test_add_remove_server_single_steps():
    ctx = _ctx(n_servers=2)
    ctx.master.add_server()
    assert ctx.master.n_servers == 3
    ctx.master.remove_server()
    assert ctx.master.n_servers == 2
    assert ctx.metrics.counters["elastic-resizes"] == 2


def test_resize_preserves_version_counters():
    """Worker-cache version tokens must never regress across migration:
    the migrated row's version is the max over contributing shards."""
    ctx = _ctx(n_servers=2)
    m, client = _dense_with_values(ctx)
    client.push_add(m, 0, np.ones(30))  # bump versions past 1
    old_version = max(
        server.versions.get((m, 0), 0) for server in ctx.master.servers
    )
    assert old_version > 0
    ctx.master.resize_servers(3)
    new_version = max(
        server.versions.get((m, 0), 0) for server in ctx.master.servers
    )
    assert new_version >= old_version


def test_resize_retires_ghost_heat():
    """Shrinking must retire heat-ledger keys of departed servers — a
    stale (matrix, server) key would otherwise keep reading as hot."""
    ctx = _ctx(n_servers=4)
    m, client = _dense_with_values(ctx)
    for _ in range(3):
        client.pull_row(m, 0)
    heat = ctx.metrics.shard_heat()
    assert any(key[1] >= 2 for key in heat)  # heat on the doomed servers
    ctx.master.resize_servers(2)
    heat = ctx.metrics.shard_heat()
    assert heat  # the survivors' ledger lives on
    assert all(key[1] < 2 for key in heat)  # no ghosts


def test_resize_invalidates_checkpoints_and_resweeps():
    """Pre-resize snapshots hold pre-migration shard ranges; the resize
    must drop them and take a fresh sweep so recovery stays safe."""
    ctx = _ctx(n_servers=2)
    m, client = _dense_with_values(ctx)
    ctx.master.checkpoint_all()
    taken_before = ctx.master.checkpoints.checkpoints_taken
    ctx.master.resize_servers(3)
    # A fresh sweep ran at the new topology ...
    assert ctx.master.checkpoints.checkpoints_taken > taken_before
    # ... and recovery from it restores post-migration state.
    ctx.master.servers[0].crash()
    ctx.master.recover(0)
    assert np.allclose(client.pull_row(m, 0), np.arange(30.0))


def test_resize_without_checkpoints_takes_no_sweep():
    ctx = _ctx(n_servers=2)
    _dense_with_values(ctx)
    ctx.master.resize_servers(3)
    assert ctx.master.checkpoints.checkpoints_taken == 0


def test_resize_bumps_epoch_and_notifies_topology_hooks():
    ctx = _ctx(n_servers=2)
    m, client = _dense_with_values(ctx)
    client.pull_row(m, 0)
    transport = client.transport
    assert transport._routing  # warmed by the pulls
    epoch = ctx.master.topology_epoch
    fired = []
    ctx.cluster.topology_change_hooks.append(lambda: fired.append(True))
    ctx.master.resize_servers(3)
    assert ctx.master.topology_epoch == epoch + 1
    assert fired == [True]
    assert transport._routing == {}  # routing cache invalidated
    assert ctx.metrics.bytes_for_tag("ps-resize") > 0


def test_resize_invalidates_worker_cache():
    ctx = _ctx(n_servers=2, consistency="ssp", staleness=3)
    m = ctx.master.create_matrix(12)
    client = _client(ctx)
    client.push_assign(m, 0, np.arange(12.0))
    client.pull_row(m, 0)
    assert client.cache.entries  # warmed
    ctx.master.resize_servers(3)
    assert client.cache.entries == {}
    # A fresh pull (miss) against the new topology returns the data.
    assert np.allclose(client.pull_row(m, 0), np.arange(12.0))


def test_elastic_worker_tier():
    ctx = _ctx(n_executors=2)
    cluster = ctx.cluster
    assert len(cluster.executors) == 2
    new_node = cluster.add_executor()
    assert len(cluster.executors) == 3
    assert new_node in cluster.executors
    # The new worker is immediately usable as a PS client.
    table = ctx.master.create_table(4)
    values = ctx.client_for(new_node).pull_or_create(table, [0])
    assert values.shape == (1, 4)
    cluster.remove_executor()
    assert len(cluster.executors) == 2


# -- chaos: crash mid-migration ----------------------------------------------


def test_server_crash_mid_migration_recovers_and_completes():
    """A source server dying mid-sweep is recovered in place and the
    migration completes with the checkpointed values intact."""
    ctx = _ctx(n_servers=3)
    m, client = _dense_with_values(ctx)
    table = ctx.master.create_table(4)
    client.pull_or_create(table, [0, 1, 2, 3, 4, 5])
    ctx.master.checkpoint_all()
    ctx.master.servers[1].crash()  # dead when the migration reads it
    ctx.master.resize_servers(4)
    assert ctx.metrics.counters["server-recoveries"] == 1
    assert np.allclose(client.pull_row(m, 0), np.arange(30.0))
    assert np.allclose(client.pull_row(m, 1), np.arange(30.0) * 2.0)
    # Lazy rows re-read bit-identically too (no re-creation).
    before = ctx.metrics.counters["lazy-creates"]
    client.pull_or_create(table, [0, 1, 2, 3, 4, 5])
    assert ctx.metrics.counters["lazy-creates"] == before


def test_serving_stream_survives_crash_and_resize():
    """The full serving loop: crash a server mid-stream, autoscale-style
    resizes on either side — the stream completes, writes are not lost,
    and the run stays deterministic."""
    from repro.experiments.runner import make_context
    from repro.serving import run_serving

    def run():
        ctx = make_context(n_executors=2, n_servers=2, seed=9,
                           timeseries_window=0.25)
        cluster = ctx.cluster
        table = ctx.master.create_table(8, name="warm")
        client = _client(ctx)
        client.pull_or_create(table, [0, 1])
        client.push_add(table, 0, np.full(8, 3.0))
        ctx.master.checkpoint_all()
        ctx.master.resize_servers(3)     # grow ...
        ctx.master.servers[0].crash()    # ... die ...
        ctx.master.resize_servers(2)     # ... shrink through the crash
        result = run_serving(ctx, "smoke")
        survivor = client.pull_or_create(table, [0])
        return result, survivor, cluster.metrics.counters["server-recoveries"]

    (res_a, row_a, recoveries_a) = run()
    (res_b, row_b, recoveries_b) = run()
    assert recoveries_a == recoveries_b == 1
    assert res_a["requests"] > 0
    # The pre-crash write survived the crash + both migrations.
    assert row_a[0, 0] >= 3.0
    # Bit-identical across runs: stream, scaling history, final values.
    assert res_a == res_b
    assert np.array_equal(row_a, row_b)


# -- satellite: cache savings priced through the cost model -------------------


def _cache_saved_bytes(wire_codec):
    cluster = Cluster(ClusterConfig(
        n_executors=2, n_servers=2, seed=42,
        consistency="ssp", staleness=3, wire_codec=wire_codec,
    ))
    master = PSMaster(cluster)
    client = PSClient(cluster, master, cluster.executors[0])
    m = master.create_matrix(64)
    client.push_assign(m, 0, np.arange(64.0))
    client.pull_row(m, 0)   # miss: fills the cache
    client.pull_row(m, 0)   # hit: books saved bytes
    return cluster.metrics.cache_bytes_saved[client.node_id]


def test_cache_savings_priced_through_cost_model():
    """A cache hit under a forced half-rate codec must report roughly
    half the identity-rate savings: the hit avoided the *compressed*
    response, not the fp64 upper bound."""
    identity = _cache_saved_bytes("off")
    fp16 = _cache_saved_bytes("fp16")
    assert 0 < fp16 < identity
    # fp16 ships 2 bytes per value instead of 8; request and response
    # headers are charged identically in both regimes, so the saving gap
    # is exactly the payload derating: 64 values x 6 bytes.
    assert identity - fp16 == 64 * (messages.FLOAT_BYTES - 2)


def test_priced_pull_response_matches_identity_when_codec_off():
    ctx = _ctx()
    client = _client(ctx)
    assert client._priced_response_bytes(16) == \
        messages.dense_pull_response_bytes(16)


# -- interaction with replication and the cost model --------------------------


def test_resize_demotes_all_replicas_first():
    """Every replica is installed against the pre-resize shard map, so a
    resize (either direction) demotes them wholesale before migrating."""
    for new_count in (4, 2):
        ctx = _ctx(n_servers=3, replication="topk",
                   hot_key_fraction=0.34, replication_factor=1)
        m = ctx.master.create_matrix(30)
        client = _client(ctx)
        client.push_assign(m, 0, np.arange(30.0))
        for _ in range(4):
            client.pull_range(m, 0, 0, 10)
        ctx.master.replication.rebalance()
        assert ctx.master.replication.replicated_keys()
        ctx.master.resize_servers(new_count)
        assert ctx.master.replication.replicated_keys() == []
        assert np.allclose(client.pull_row(m, 0), np.arange(30.0))


def test_lazy_create_dereplicates_via_direct_write():
    """A server-side lazy creation is a write the replicas never saw:
    the create path must demote the affected matrix's replicas rather
    than let reads diverge."""
    ctx = _ctx(n_servers=3, replication="topk",
               hot_key_fraction=0.34, replication_factor=1)
    client = _client(ctx)
    table = ctx.master.create_table(6)
    client.pull_or_create(table, [0, 1, 2])
    for _ in range(4):
        client.pull_or_create(table, [0])
    ctx.master.replication.rebalance()
    before = ctx.master.replication.replicated_keys()
    client.pull_or_create(table, [9])  # fresh id on a replicated matrix
    after = ctx.master.replication.replicated_keys()
    assert [k for k in after if k[0] == table] == [] or before == after
    assert np.array_equal(
        client.pull_or_create(table, [0, 1, 2]),
        client.pull_or_create(table, [0, 1, 2]),
    )


def test_resize_resets_costmodel_hot_shards():
    """The codec tiering's hot-shard set indexes (matrix, server) keys of
    the old topology; a resize must drop it and restart the decision
    window on post-migration traffic."""
    ctx = _ctx(n_servers=2, wire_codec="auto")
    m, client = _dense_with_values(ctx)
    costmodel = ctx.cluster.costmodel
    costmodel._hot_shards = frozenset({(m, 0)})
    costmodel._decisions = 7
    ctx.master.resize_servers(3)
    assert costmodel._hot_shards == frozenset()
    assert costmodel._decisions == 0
    assert np.allclose(client.pull_row(m, 0), np.arange(30.0))


def test_autoscaler_idle_band_is_a_no_op():
    """Backlog between the down and up thresholds: no action, and the
    evaluation does not arm the cooldown."""
    from repro.config import ElasticitySpec
    from repro.serving.autoscaler import Autoscaler

    ctx = _ctx()
    spec = ElasticitySpec(mode="auto", min_servers=1, max_servers=6,
                          min_workers=1, max_workers=6,
                          scale_up_backlog=1e9, scale_down_backlog=0.0)
    scaler = Autoscaler(ctx, spec=spec)
    assert scaler.maybe_scale(0.0) is None
    assert scaler.events == []
    assert scaler._last_action is None


# -- scale-down drain accounting ----------------------------------------------


def test_scale_down_charges_departing_drain():
    """Regression: a departing server whose NIC queue (or CPU) is still
    booked out must be drained — its clock pinned to the later of its last
    completion and both NIC horizons — BEFORE its shards migrate, so the
    migration reads state the server had actually finished producing.
    Previously the migration read the doomed server at its stale clock and
    the backlog's time vanished from the makespan."""
    ctx = _ctx(n_servers=3)
    m, client = _dense_with_values(ctx)
    network = ctx.cluster.network
    doomed = ctx.cluster.servers[2]
    while network.nic_horizon(doomed)[0] < 5e-3:
        network.transfer(doomed, ctx.cluster.servers[0], 200_000,
                         deliver=False)
    backlog_horizon = network.nic_horizon(doomed)[0]
    assert ctx.cluster.clock.now(doomed) < backlog_horizon
    ctx.master.resize_servers(2)
    assert ctx.metrics.counters["elastic-drains"] == 1
    drained = ctx.metrics.latency["elastic-drain"].summary()
    assert drained["max"] > 0.0
    # The departing clock was pinned to its booked horizon, and the whole
    # run's makespan now covers the drained backlog.
    assert ctx.cluster.clock.now(doomed) >= backlog_horizon
    assert ctx.cluster.elapsed() >= backlog_horizon
    # Values still migrated intact.
    assert np.allclose(client.pull_row(m, 0), np.arange(30.0))
    assert np.allclose(client.pull_row(m, 1), np.arange(30.0) * 2.0)


def test_scale_down_idle_departure_charges_no_drain():
    """A departing server with nothing in flight has nothing to drain:
    no counter, no histogram, identical behaviour to the pre-fix path."""
    ctx = _ctx(n_servers=3)
    m, client = _dense_with_values(ctx)
    ctx.cluster.barrier()  # everyone caught up: no booked horizons ahead
    ctx.master.resize_servers(2)
    assert "elastic-drains" not in ctx.metrics.counters
    assert "elastic-drain" not in ctx.metrics.latency
    assert np.allclose(client.pull_row(m, 0), np.arange(30.0))


def test_scale_up_never_drains():
    ctx = _ctx(n_servers=2)
    _dense_with_values(ctx)
    ctx.master.resize_servers(4)
    assert "elastic-drains" not in ctx.metrics.counters
