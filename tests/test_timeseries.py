"""Virtual-time time-series sampler: windows, rates, alignment, exports.

Unit tests drive the sampler against a fake cluster with a hand-advanced
clock (exact boundary arithmetic); integration tests run real workloads
with ``timeseries_window`` set and check the wiring end to end — windows
close from the client-op and stage-end flush points, the report grows a
time-series section, and the chrome-trace exporter emits counter tracks.
The bit-identity of sampled vs. plain runs is covered by the golden
matrix (``test_observability_never_perturbs_the_golden_cell``).
"""

import numpy as np
import pytest

from repro.cluster.metrics import MetricsRegistry
from repro.config import ClusterConfig, ConfigError
from repro.core.context import PS2Context
from repro.obs import timeseries_counter_events, render_report
from repro.obs.timeseries import TimeSeriesSampler


class _FakeNetwork:
    def __init__(self):
        self.horizons = {}

    def nic_horizon(self, node_id):
        return self.horizons.get(node_id, (0.0, 0.0))


class _FakeCluster:
    """Just enough surface for the sampler: metrics, clock, network."""

    def __init__(self):
        self.metrics = MetricsRegistry()
        self.network = _FakeNetwork()
        self.node_ids = ["exec-0", "server-0"]
        self.now = 0.0

    def elapsed(self):
        return self.now


def _sampler(window=1.0):
    cluster = _FakeCluster()
    sampler = TimeSeriesSampler(cluster, window)
    cluster.metrics.window_sink = sampler
    return cluster, sampler


# -- unit: windowing arithmetic ----------------------------------------------


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        TimeSeriesSampler(_FakeCluster(), 0.0)


def test_config_rejects_negative_window():
    with pytest.raises(ConfigError):
        ClusterConfig(n_executors=2, n_servers=2, timeseries_window=-1.0)


def test_no_boundary_no_window():
    cluster, sampler = _sampler(window=1.0)
    cluster.metrics.record_transfer("exec-0", "server-0", 100)
    cluster.now = 0.5
    sampler.maybe_flush()
    assert sampler.windows == []


def test_multiple_passed_boundaries_close_aligned_windows():
    """Everything since the last flush lands in the first closing window;
    the other passed boundaries close empty — series stay aligned."""
    cluster, sampler = _sampler(window=1.0)
    cluster.metrics.record_transfer("exec-0", "server-0", 400)
    cluster.metrics.record_request("server-0", tag="ps-read")
    cluster.metrics.observe("pull", 0.25)
    cluster.now = 3.5
    sampler.maybe_flush()
    assert [(w.start, w.end) for w in sampler.windows] == \
        [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]
    first, second, third = sampler.windows
    assert first.bytes_sent == {"exec-0": 400}
    assert first.requests == {"server-0": 1}
    assert first.latency["pull"]["count"] == 1
    assert first.byte_rate("exec-0") == 400.0
    assert second.bytes_sent == {} and third.bytes_sent == {}
    assert second.latency == {}
    # an idempotent re-check closes nothing more
    sampler.maybe_flush()
    assert len(sampler.windows) == 3


def test_finalize_closes_trailing_partial_window_with_full_width():
    cluster, sampler = _sampler(window=1.0)
    cluster.now = 1.0
    sampler.maybe_flush()
    assert len(sampler.windows) == 1
    cluster.metrics.record_transfer("exec-0", "server-0", 64)
    cluster.now = 1.25
    sampler.finalize()
    assert len(sampler.windows) == 2
    trailing = sampler.windows[-1]
    # aligned width even though the run ended mid-window
    assert (trailing.start, trailing.end) == (1.0, 2.0)
    assert trailing.bytes_sent == {"exec-0": 64}
    # a silent finalize adds nothing
    assert len(sampler.finalize()) == 2


def test_deltas_are_per_window_not_cumulative():
    cluster, sampler = _sampler(window=1.0)
    cluster.metrics.record_transfer("exec-0", "server-0", 100)
    cluster.now = 1.0
    sampler.maybe_flush()
    cluster.metrics.record_transfer("exec-0", "server-0", 250)
    cluster.now = 2.0
    sampler.maybe_flush()
    assert [w.bytes_sent.get("exec-0", 0.0) for w in sampler.windows] == \
        [100.0, 250.0]
    total = sum(w.bytes_sent.get("exec-0", 0.0) for w in sampler.windows)
    assert total == cluster.metrics.bytes_sent["exec-0"]


def test_reads_never_mutate_the_registry():
    cluster, sampler = _sampler(window=1.0)
    cluster.metrics.record_transfer("exec-0", "server-0", 10)
    before = cluster.metrics.snapshot()
    cluster.now = 5.0
    sampler.maybe_flush()
    sampler.finalize()
    assert cluster.metrics.snapshot() == before


def test_nic_backlog_and_cache_gauges():
    cluster, sampler = _sampler(window=1.0)
    cluster.network.horizons["server-0"] = (2.5, 0.75)
    cluster.metrics.record_cache_hit("exec-0", bytes_saved=8.0)
    cluster.metrics.record_cache_hit("exec-0")
    cluster.metrics.record_cache_miss("exec-0")
    cluster.now = 1.0
    sampler.maybe_flush()
    window = sampler.windows[0]
    # backlog = how far the worst NIC horizon runs past the boundary
    assert window.nic_backlog == {"server-0": pytest.approx(1.5)}
    assert window.cache_hit_rate() == pytest.approx(2 / 3)
    assert window.cache_hit_rate("exec-0") == pytest.approx(2 / 3)
    assert window.cache_hit_rate("exec-1") == 0.0


def test_series_are_aligned_across_metrics():
    cluster, sampler = _sampler(window=1.0)
    cluster.metrics.record_transfer("exec-0", "server-0", 100)
    cluster.metrics.observe("pull", 0.5)
    cluster.now = 1.0
    sampler.maybe_flush()
    cluster.now = 2.0
    sampler.maybe_flush()  # silent window
    bytes_series = sampler.series("byte_rate", key="exec-0")
    p99_series = sampler.series("latency", key="pull", q="p99")
    hit_series = sampler.series("cache_hit_rate")
    backlog_series = sampler.series("nic_backlog", key="server-0")
    assert [t for t, _v in bytes_series] == [1.0, 2.0]
    assert [t for t, _v in p99_series] == [1.0, 2.0]
    assert len(hit_series) == len(backlog_series) == 2
    assert bytes_series[0][1] == 100.0 and bytes_series[1][1] == 0.0
    assert p99_series[0][1] > 0.0 and p99_series[1][1] == 0.0
    with pytest.raises(ValueError):
        sampler.series("entropy")


def test_window_to_dict_round_trips_sections():
    cluster, sampler = _sampler(window=2.0)
    cluster.metrics.record_transfer("exec-0", "server-0", 100)
    cluster.now = 2.0
    sampler.maybe_flush()
    d = sampler.windows[0].to_dict()
    assert d["start"] == 0.0 and d["end"] == 2.0
    assert d["bytes_sent"] == {"exec-0": 100.0}
    assert set(d) == {"start", "end", "bytes_sent", "requests",
                      "cache_hits", "cache_misses", "latency", "nic_backlog"}


# -- integration: real cluster wiring ----------------------------------------


def _run_ops(window):
    ctx = PS2Context(config=ClusterConfig(
        n_executors=2, n_servers=2, seed=5, timeseries_window=window,
    ))
    w = ctx.dense(512, rows=2)
    g = w.derive().fill(0.5)
    w.push(np.arange(512.0))
    w.pull()
    w.dot(g)
    return ctx


def test_cluster_wires_sampler_and_flushes_on_ops():
    ctx = _run_ops(window=1e-4)
    sampler = ctx.cluster.timeseries
    assert sampler is not None
    assert ctx.cluster.metrics.window_sink is sampler
    windows = sampler.finalize()
    assert windows
    for index, w in enumerate(windows):
        assert w.start == pytest.approx(index * 1e-4)
        assert w.end == pytest.approx((index + 1) * 1e-4)
    # the windows partition the cumulative per-node byte counters
    for node, total in ctx.cluster.metrics.bytes_sent.items():
        assert sum(w.bytes_sent.get(node, 0.0) for w in windows) == \
            pytest.approx(total)


def test_cluster_without_window_has_no_sampler():
    ctx = PS2Context(config=ClusterConfig(n_executors=2, n_servers=2,
                                          seed=5))
    assert ctx.cluster.timeseries is None
    assert ctx.cluster.metrics.window_sink is None


def test_report_gains_time_series_section():
    ctx = _run_ops(window=1e-4)
    report = render_report(ctx.cluster, title="ts")
    assert "-- time series" in report
    assert "bytes_per_s" in report
    assert "nic_backlog_s" in report


def test_chrome_counter_events():
    ctx = _run_ops(window=1e-4)
    sampler = ctx.cluster.timeseries
    sampler.finalize()
    events = timeseries_counter_events(sampler, pid=777, process_name="ts")
    assert events[0]["ph"] == "M"
    assert events[0]["args"]["name"] == "ts"
    counters = [e for e in events if e["ph"] == "C"]
    assert counters
    assert all(e["pid"] == 777 for e in events)
    names = {e["name"] for e in counters}
    assert "bytes/s" in names
    # counter timestamps are window starts in virtual microseconds
    starts = {w.start * 1e6 for w in sampler.windows}
    assert {e["ts"] for e in counters} <= starts
