"""Scheduler tests: retries, exactly-once commits, broadcast, task context."""

import pytest

from repro.cluster.cluster import Cluster
from repro.common.errors import JobAbortedError, TaskError
from repro.config import ClusterConfig, FailureConfig
from repro.sparklite.broadcast import Broadcast
from repro.sparklite.context import SparkContext
from repro.sparklite.task import TaskContext


def make_sc(task_failure_prob=0.0, max_retries=10, seed=0):
    config = ClusterConfig(
        n_executors=4,
        n_servers=1,
        seed=seed,
        failures=FailureConfig(
            task_failure_prob=task_failure_prob, max_task_retries=max_retries
        ),
    )
    return SparkContext(Cluster(config))


def test_tasks_retry_and_job_completes():
    sc = make_sc(task_failure_prob=0.3, seed=5)
    result = sc.parallelize(range(40)).sum()
    assert result == sum(range(40))
    assert sc.scheduler.tasks_failed > 0


def test_retries_cost_time():
    clean = make_sc(task_failure_prob=0.0, seed=5)
    flaky = make_sc(task_failure_prob=0.4, seed=5)
    data = list(range(40))
    clean.parallelize(data).sum()
    flaky.parallelize(data).sum()
    assert flaky.elapsed() > clean.elapsed()


def test_retry_budget_exhaustion_aborts():
    sc = make_sc(task_failure_prob=1.0, max_retries=2, seed=1)
    with pytest.raises(JobAbortedError):
        sc.parallelize(range(4)).count()


def test_deferred_effects_exactly_once():
    """A retried task must not double-apply its deferred effects."""
    sc = make_sc(task_failure_prob=0.4, seed=9)
    applied = []

    def fn(ctx, iterator):
        items = list(iterator)
        ctx.defer(lambda: applied.extend(items))
        return [len(items)]

    sc.parallelize(range(30)).map_partitions_with_context(fn).collect()
    assert sorted(applied) == list(range(30))
    assert sc.scheduler.tasks_failed > 0


def test_user_exception_becomes_task_error():
    sc = make_sc()

    def boom(x):
        raise ValueError("nope")

    with pytest.raises(TaskError):
        sc.parallelize([1]).map(boom).collect()


def test_executor_assignment_round_robin():
    sc = make_sc()
    assert sc.scheduler.executor_for(0) == "executor-0"
    assert sc.scheduler.executor_for(5) == "executor-1"


def test_task_context_commit_and_abandon(cluster):
    ctx = TaskContext(cluster, "executor-0", 0, 0, 0)
    log = []
    ctx.defer(lambda: log.append("a"))
    ctx.defer(lambda: log.append("b"))
    ctx.commit()
    assert log == ["a", "b"]
    ctx.defer(lambda: log.append("c"))
    ctx.abandon()
    ctx.commit()
    assert log == ["a", "b"]


def test_task_context_charges(cluster):
    ctx = TaskContext(cluster, "executor-1", 0, 0, 0)
    ctx.charge_seconds(0.5)
    ctx.charge_flops(cluster.config.node.flops)  # one more second
    assert cluster.clock.now("executor-1") == pytest.approx(1.5)


# -- broadcast -----------------------------------------------------------------

def test_broadcast_reaches_every_executor(cluster):
    sc = SparkContext(cluster)
    before = cluster.metrics.messages_by_tag.get("broadcast", 0)
    bc = sc.broadcast([1, 2, 3], nbytes=1000)
    after = cluster.metrics.messages_by_tag["broadcast"]
    # Torrent mode: one seed chunk plus one ring transfer per executor.
    assert after - before == 2 * len(cluster.executors)
    assert bc.value == [1, 2, 3]


def test_broadcast_torrent_avoids_driver_incast(cluster):
    """The driver sends ~1 copy total, not one copy per executor."""
    bc = Broadcast(cluster, "x", nbytes=10**6)
    bc.ship()
    driver_sent = cluster.metrics.bytes_sent["driver"]
    assert driver_sent < 1.5 * 10**6


def test_broadcast_naive_mode_incasts(cluster):
    bc = Broadcast(cluster, "x", nbytes=10**6, mode="naive")
    bc.ship()
    driver_sent = cluster.metrics.bytes_sent["driver"]
    assert driver_sent >= len(cluster.executors) * 10**6


def test_broadcast_ship_is_idempotent(cluster):
    bc = Broadcast(cluster, "x", nbytes=10)
    bc.ship()
    count = cluster.metrics.messages_by_tag["broadcast"]
    bc.ship()
    assert cluster.metrics.messages_by_tag["broadcast"] == count


def test_broadcast_destroy_allows_reship(cluster):
    bc = Broadcast(cluster, "x", nbytes=10)
    bc.ship()
    bc.destroy()
    bc.ship()
    assert cluster.metrics.messages_by_tag["broadcast"] == \
        4 * len(cluster.executors)


def test_broadcast_estimates_size(cluster):
    import numpy as np

    bc = Broadcast(cluster, np.zeros(100))
    assert bc.nbytes == 800
