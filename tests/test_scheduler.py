"""Scheduler tests: retries, exactly-once commits, broadcast, task context."""

import pytest

from repro.cluster.cluster import Cluster
from repro.common.errors import JobAbortedError, TaskError
from repro.config import ClusterConfig, FailureConfig
from repro.sparklite.broadcast import Broadcast
from repro.sparklite.context import SparkContext
from repro.sparklite.task import TaskContext


def make_sc(task_failure_prob=0.0, max_retries=10, seed=0):
    config = ClusterConfig(
        n_executors=4,
        n_servers=1,
        seed=seed,
        failures=FailureConfig(
            task_failure_prob=task_failure_prob, max_task_retries=max_retries
        ),
    )
    return SparkContext(Cluster(config))


def test_tasks_retry_and_job_completes():
    sc = make_sc(task_failure_prob=0.3, seed=5)
    result = sc.parallelize(range(40)).sum()
    assert result == sum(range(40))
    assert sc.scheduler.tasks_failed > 0


def test_retries_cost_time():
    clean = make_sc(task_failure_prob=0.0, seed=5)
    flaky = make_sc(task_failure_prob=0.4, seed=5)
    data = list(range(40))
    clean.parallelize(data).sum()
    flaky.parallelize(data).sum()
    assert flaky.elapsed() > clean.elapsed()


def test_retry_budget_exhaustion_aborts():
    sc = make_sc(task_failure_prob=1.0, max_retries=2, seed=1)
    with pytest.raises(JobAbortedError):
        sc.parallelize(range(4)).count()


def test_deferred_effects_exactly_once():
    """A retried task must not double-apply its deferred effects."""
    sc = make_sc(task_failure_prob=0.4, seed=9)
    applied = []

    def fn(ctx, iterator):
        items = list(iterator)
        ctx.defer(lambda: applied.extend(items))
        return [len(items)]

    sc.parallelize(range(30)).map_partitions_with_context(fn).collect()
    assert sorted(applied) == list(range(30))
    assert sc.scheduler.tasks_failed > 0


def test_user_exception_becomes_task_error():
    sc = make_sc()

    def boom(x):
        raise ValueError("nope")

    with pytest.raises(TaskError):
        sc.parallelize([1]).map(boom).collect()


def test_executor_assignment_round_robin():
    sc = make_sc()
    assert sc.scheduler.executor_for(0) == "executor-0"
    assert sc.scheduler.executor_for(5) == "executor-1"


def test_task_context_commit_and_abandon(cluster):
    ctx = TaskContext(cluster, "executor-0", 0, 0, 0)
    log = []
    ctx.defer(lambda: log.append("a"))
    ctx.defer(lambda: log.append("b"))
    ctx.commit()
    assert log == ["a", "b"]
    ctx.defer(lambda: log.append("c"))
    ctx.abandon()
    ctx.commit()
    assert log == ["a", "b"]


def test_task_context_charges(cluster):
    ctx = TaskContext(cluster, "executor-1", 0, 0, 0)
    ctx.charge_seconds(0.5)
    ctx.charge_flops(cluster.config.node.flops)  # one more second
    assert cluster.clock.now("executor-1") == pytest.approx(1.5)


# -- broadcast -----------------------------------------------------------------

def test_broadcast_reaches_every_executor(cluster):
    sc = SparkContext(cluster)
    before = cluster.metrics.messages_by_tag.get("broadcast", 0)
    bc = sc.broadcast([1, 2, 3], nbytes=1000)
    after = cluster.metrics.messages_by_tag["broadcast"]
    # Torrent mode: one seed chunk plus one ring transfer per executor.
    assert after - before == 2 * len(cluster.executors)
    assert bc.value == [1, 2, 3]


def test_broadcast_torrent_avoids_driver_incast(cluster):
    """The driver sends ~1 copy total, not one copy per executor."""
    bc = Broadcast(cluster, "x", nbytes=10**6)
    bc.ship()
    driver_sent = cluster.metrics.bytes_sent["driver"]
    assert driver_sent < 1.5 * 10**6


def test_broadcast_naive_mode_incasts(cluster):
    bc = Broadcast(cluster, "x", nbytes=10**6, mode="naive")
    bc.ship()
    driver_sent = cluster.metrics.bytes_sent["driver"]
    assert driver_sent >= len(cluster.executors) * 10**6


def test_broadcast_ship_is_idempotent(cluster):
    bc = Broadcast(cluster, "x", nbytes=10)
    bc.ship()
    count = cluster.metrics.messages_by_tag["broadcast"]
    bc.ship()
    assert cluster.metrics.messages_by_tag["broadcast"] == count


def test_broadcast_destroy_allows_reship(cluster):
    bc = Broadcast(cluster, "x", nbytes=10)
    bc.ship()
    bc.destroy()
    bc.ship()
    assert cluster.metrics.messages_by_tag["broadcast"] == \
        4 * len(cluster.executors)


def test_broadcast_estimates_size(cluster):
    import numpy as np

    bc = Broadcast(cluster, np.zeros(100))
    assert bc.nbytes == 800


# -- tree combine --------------------------------------------------------------

def _placed(cluster, values):
    executors = cluster.alive_executors
    return [(executors[i % len(executors)], v) for i, v in enumerate(values)]


def test_tree_combine_depth3_is_correct_and_fully_reduces():
    """At depth 3 eight partials reduce 8 -> 4 -> 2 -> 1 executor-side, so
    exactly ONE partial crosses to the driver."""
    cluster = Cluster(ClusterConfig(n_executors=4, n_servers=1, seed=42))
    scheduler = SparkContext(cluster).scheduler
    values = [1, 2, 3, 4, 5, 6, 7, 8]
    result = scheduler.tree_combine(
        _placed(cluster, values), 0, lambda a, b: a + b, depth=3
    )
    assert result == sum(values)
    # 4 + 2 + 1 executor-side merges, then one survivor ships to the driver.
    assert cluster.metrics.messages_by_tag["tree-combine"] == 8
    from repro.cluster.cluster import DRIVER

    driver_msgs = sum(
        1 for (node, _tag), n in cluster.metrics.requests_by_server_tag.items()
        if node == DRIVER
    )
    assert driver_msgs == 0  # combining is executor work, not server work


def test_tree_combine_deeper_ships_less_to_the_driver():
    from repro.cluster.cluster import DRIVER

    values = list(range(8))
    received = {}
    for depth in (2, 3):
        cluster = Cluster(ClusterConfig(n_executors=4, n_servers=1, seed=42))
        scheduler = SparkContext(cluster).scheduler
        result = scheduler.tree_combine(
            _placed(cluster, values), 0, lambda a, b: a + b, depth=depth
        )
        assert result == sum(values)
        received[depth] = cluster.metrics.bytes_received[DRIVER]
    # Depth 2 leaves two survivors for the driver merge; depth 3 leaves one.
    assert received[3] < received[2]


def test_tree_combine_odd_count_carries_leftover():
    cluster = Cluster(ClusterConfig(n_executors=4, n_servers=1, seed=42))
    scheduler = SparkContext(cluster).scheduler
    values = [10, 20, 30, 40, 50]
    result = scheduler.tree_combine(
        _placed(cluster, values), 0, lambda a, b: a + b, depth=3
    )
    assert result == sum(values)
    # 5 -> 3 (2 merges) -> 2 (1 merge) -> 1 (1 merge), + 1 driver ship.
    assert cluster.metrics.messages_by_tag["tree-combine"] == 5


# -- stage-end hooks -----------------------------------------------------------

def test_stage_end_hooks_fire_after_barrier_and_commits():
    """Hooks run once per stage, strictly after every deferred task effect
    committed and after the driver's stage barrier."""
    sc = make_sc()
    cluster = sc.cluster
    order = []
    barrier_times = []

    def hook():
        order.append("hook")
        from repro.cluster.cluster import DRIVER

        barrier_times.append(cluster.clock.now(DRIVER))

    cluster.stage_end_hooks.append(hook)

    def fn(ctx, iterator):
        items = list(iterator)
        ctx.defer(lambda: order.append("commit"))
        return [len(items)]

    sc.parallelize(range(8), 4).map_partitions_with_context(fn).collect()
    # All four commits land before the (single) hook invocation.
    assert order == ["commit"] * 4 + ["hook"]
    # The hook observed the post-barrier driver clock: no earlier than any
    # task's completion on its executor.
    executor_times = [
        cluster.clock.now(e) for e in cluster.executors
    ]
    assert barrier_times[0] >= max(executor_times)


def test_stage_end_hooks_fire_every_stage():
    sc = make_sc()
    fired = []
    sc.cluster.stage_end_hooks.append(lambda: fired.append(1))
    rdd = sc.parallelize(range(8), 4)
    rdd.collect()
    rdd.sum()
    rdd.count()
    assert len(fired) == 3
