"""GBDT tests: model quality, method equivalence, binning, prediction."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.data import dense_tabular
from repro.ml.gbdt import GBDTModel, quantile_bin_edges, train_gbdt


@pytest.fixture(scope="module")
def tabular():
    return dense_tabular(500, 10, seed=17, noise=0.05)


def test_quantile_bin_edges_shapes():
    rng = np.random.default_rng(0)
    features = rng.random((100, 4))
    edges = quantile_bin_edges(features, 8)
    assert len(edges) == 4
    assert all(e.size <= 7 for e in edges)
    assert all(np.all(np.diff(e) > 0) for e in edges)


def test_bin_features_in_range():
    rng = np.random.default_rng(0)
    features = rng.random((50, 3))
    model = GBDTModel(quantile_bin_edges(features, 6), 0.1)
    binned = model.bin_features(features)
    assert binned.min() >= 0
    assert binned.max() <= 5


def test_training_loss_decreases(make_ps2, tabular):
    X, y = tabular
    result = train_gbdt(make_ps2(), X, y, n_trees=6, max_depth=3, n_bins=8)
    losses = [l for _t, l in result.history]
    assert losses[-1] < losses[0]
    assert all(b <= a + 1e-12 for a, b in zip(losses, losses[1:]))


def test_model_fits_generating_function(make_ps2, tabular):
    X, y = tabular
    result = train_gbdt(make_ps2(), X, y, n_trees=12, max_depth=3, n_bins=16)
    model = result.extras["model"]
    predictions = model.predict_proba(X) > 0.5
    acc = float(np.mean(predictions == (y > 0.5)))
    assert acc > 0.85


def test_predict_margin_shape(make_ps2, tabular):
    X, y = tabular
    result = train_gbdt(make_ps2(), X, y, n_trees=2, max_depth=2, n_bins=8)
    model = result.extras["model"]
    assert model.predict_margin(X[:7]).shape == (7,)
    probs = model.predict_proba(X[:7])
    assert np.all((probs >= 0) & (probs <= 1))


def test_all_methods_build_identical_trees(make_ps2, tabular):
    """PS2, AllReduce and driver split finding are the same algorithm."""
    X, y = tabular
    kwargs = dict(n_trees=3, max_depth=3, n_bins=8, seed=3)
    runs = {
        method: train_gbdt(make_ps2(), X, y, method=method, **kwargs)
        for method in ("ps2", "allreduce", "driver")
    }
    losses = {m: [l for _t, l in r.history] for m, r in runs.items()}
    assert losses["ps2"] == pytest.approx(losses["allreduce"])
    assert losses["ps2"] == pytest.approx(losses["driver"])


def test_ps2_faster_than_allreduce(make_ps2, tabular):
    """Figure 11's shape: PS2 beats the AllReduce exchange."""
    X, y = tabular
    kwargs = dict(n_trees=3, max_depth=3, n_bins=32)
    ps2_run = train_gbdt(make_ps2(n_executors=8, n_servers=8), X, y,
                         method="ps2", **kwargs)
    xgb_run = train_gbdt(make_ps2(n_executors=8, n_servers=8), X, y,
                         method="allreduce", **kwargs)
    assert xgb_run.elapsed > ps2_run.elapsed


def test_unknown_method_rejected(make_ps2, tabular):
    X, y = tabular
    with pytest.raises(ConfigError):
        train_gbdt(make_ps2(), X, y, method="mpi")


def test_system_labels(make_ps2, tabular):
    X, y = tabular
    r = train_gbdt(make_ps2(), X, y, n_trees=1, max_depth=2, n_bins=4,
                   method="allreduce")
    assert r.system == "XGBoost-GBDT"


def test_learning_rate_shrinks_leaf_values(make_ps2, tabular):
    X, y = tabular
    big = train_gbdt(make_ps2(), X, y, n_trees=1, max_depth=2, n_bins=8,
                     learning_rate=1.0)
    small = train_gbdt(make_ps2(), X, y, n_trees=1, max_depth=2, n_bins=8,
                       learning_rate=0.1)

    def max_leaf(result):
        tree = result.extras["model"].trees[0]
        return max(abs(n.leaf_value) for n in tree.values() if n.is_leaf)

    assert max_leaf(small) < max_leaf(big)


def test_depth_zero_edge_case(make_ps2, tabular):
    X, y = tabular
    result = train_gbdt(make_ps2(), X, y, n_trees=1, max_depth=0, n_bins=8)
    tree = result.extras["model"].trees[0]
    assert len(tree) == 1
    assert tree[0].is_leaf
