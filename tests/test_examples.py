"""Smoke tests: every example script runs end to end."""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name, capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    saved_argv = sys.argv
    sys.argv = [path]
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = saved_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "co-located with velocity: True" in out
    assert "independent dense() co-located? False" in out
    assert "loss=" in out


def test_user_profiling(capsys):
    out = run_example("user_profiling.py", capsys)
    assert "PS2-Adam" in out and "Spark-Adam" in out
    # PS2 is the 1.0x baseline and the others are slower.
    assert "1.0x" in out


def test_graph_embedding(capsys):
    out = run_example("graph_embedding.py", capsys)
    assert "mean score" in out
    # Connected vertices score higher than random pairs.
    import re

    match = re.search(r"edges: ([-\d.]+)\s+random pairs: ([-\d.]+)", out)
    assert match is not None
    assert float(match.group(1)) > float(match.group(2))


def test_topic_modeling(capsys):
    out = run_example("topic_modeling.py", capsys)
    assert "top words per learned topic" in out
    assert "topic 5" in out


def test_fault_tolerance(capsys):
    out = run_example("fault_tolerance.py", capsys)
    assert "server-0 crashed" in out
    assert "recoveries performed: 1" in out


@pytest.mark.slow
def test_factorization_machine(capsys):
    out = run_example("factorization_machine.py", capsys)
    assert "FM (k=8, on PS2)" in out


def test_paper_listings(capsys):
    out = run_example("paper_listings.py", capsys)
    assert "Figure 3: Adam for LR" in out
    assert "only scalars crossed" in out
    assert "found server-side" in out
