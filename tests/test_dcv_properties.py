"""Property-based tests: DCVs must behave exactly like numpy vectors."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig
from repro.core.context import PS2Context


def fresh_ps2(n_servers=3):
    return PS2Context(
        config=ClusterConfig(n_executors=2, n_servers=n_servers, seed=1)
    )


vectors = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
    min_size=1,
    max_size=40,
)


@given(x=vectors, y=st.data())
@settings(max_examples=40, deadline=None)
def test_dot_matches_numpy(x, y):
    x = np.asarray(x, dtype=float)
    y = np.asarray(y.draw(st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
        min_size=len(x), max_size=len(x))), dtype=float)
    ps2 = fresh_ps2()
    a = ps2.dense(x.size, rows=4)
    b = a.derive()
    a.push(x)
    b.push(y)
    assert np.isclose(a.dot(b), float(np.dot(x, y)), atol=1e-8)


@given(x=vectors, alpha=st.floats(min_value=-10, max_value=10,
                                  allow_nan=False, width=32))
@settings(max_examples=40, deadline=None)
def test_axpy_matches_numpy(x, alpha):
    x = np.asarray(x, dtype=float)
    ps2 = fresh_ps2()
    a = ps2.dense(x.size, rows=4)
    b = a.derive()
    a.push(x)
    b.push(x[::-1].copy())
    a.iaxpy(b, alpha)
    assert np.allclose(a.pull(), x + alpha * x[::-1], atol=1e-8)


@given(x=vectors)
@settings(max_examples=40, deadline=None)
def test_aggregates_match_numpy(x):
    x = np.asarray(x, dtype=float)
    ps2 = fresh_ps2()
    a = ps2.dense(x.size)
    a.push(x)
    assert np.isclose(a.sum(), x.sum(), atol=1e-8)
    assert a.nnz() == int(np.count_nonzero(x))
    assert np.isclose(a.norm2(), float(np.linalg.norm(x)), atol=1e-8)


@given(x=vectors, data=st.data())
@settings(max_examples=40, deadline=None)
def test_sparse_pull_matches_fancy_indexing(x, data):
    x = np.asarray(x, dtype=float)
    indices = data.draw(st.lists(
        st.integers(min_value=0, max_value=x.size - 1),
        min_size=1, max_size=15, unique=True,
    ))
    ps2 = fresh_ps2()
    a = ps2.dense(x.size)
    a.push(x)
    got = a.pull(indices=np.array(indices, dtype=np.int64))
    assert np.allclose(got, x[indices], atol=1e-12)


@given(x=vectors, data=st.data())
@settings(max_examples=30, deadline=None)
def test_sparse_add_matches_numpy_scatter(x, data):
    x = np.asarray(x, dtype=float)
    indices = data.draw(st.lists(
        st.integers(min_value=0, max_value=x.size - 1),
        min_size=1, max_size=10, unique=True,
    ))
    deltas = data.draw(st.lists(
        st.floats(min_value=-5, max_value=5, allow_nan=False, width=32),
        min_size=len(indices), max_size=len(indices),
    ))
    ps2 = fresh_ps2()
    a = ps2.dense(x.size)
    a.push(x)
    a.add(np.asarray(deltas), indices=np.array(indices, dtype=np.int64))
    expected = x.copy()
    np.add.at(expected, indices, deltas)
    assert np.allclose(a.pull(), expected, atol=1e-10)


@given(x=vectors, n_servers=st.integers(min_value=1, max_value=6))
@settings(max_examples=30, deadline=None)
def test_values_independent_of_server_count(x, n_servers):
    """The same program gives the same numbers on any deployment shape."""
    x = np.asarray(x, dtype=float)
    ps2 = fresh_ps2(n_servers=n_servers)
    a = ps2.dense(x.size, rows=4)
    b = a.derive()
    a.push(x)
    b.push(np.abs(x) + 1.0)
    a.imul(b)
    assert np.allclose(a.pull(), x * (np.abs(x) + 1.0), atol=1e-8)


@given(x=vectors)
@settings(max_examples=30, deadline=None)
def test_realigned_dot_equals_colocated_dot(x):
    """Figure 4: both spellings give the same value; only cost differs."""
    x = np.asarray(x, dtype=float)
    ps2 = fresh_ps2()
    a = ps2.dense(x.size, rows=4)
    sibling = a.derive()
    stranger = ps2.dense(x.size)
    a.push(x)
    sibling.push(x * 2)
    stranger.push(x * 2)
    assert np.isclose(a.dot(sibling), a.dot(stranger), atol=1e-8)


@given(ops=st.lists(
    st.sampled_from(["iadd", "isub", "imul", "scale", "axpy"]),
    min_size=1, max_size=8,
))
@settings(max_examples=30, deadline=None)
def test_random_op_sequences_track_numpy_mirror(ops):
    """Any sequence of column ops stays bit-comparable with a local mirror."""
    rng = np.random.default_rng(7)
    dim = 17
    x = rng.standard_normal(dim)
    y = rng.standard_normal(dim) + 2.0
    ps2 = fresh_ps2()
    a = ps2.dense(dim, rows=4)
    b = a.derive()
    a.push(x)
    b.push(y)
    mirror = x.copy()
    for op in ops:
        if op == "iadd":
            a.iadd(b)
            mirror = mirror + y
        elif op == "isub":
            a.isub(b)
            mirror = mirror - y
        elif op == "imul":
            a.imul(b)
            mirror = mirror * y
        elif op == "scale":
            a.scale(0.5)
            mirror = mirror * 0.5
        elif op == "axpy":
            a.iaxpy(b, 0.25)
            mirror = mirror + 0.25 * y
    assert np.allclose(a.pull(), mirror, atol=1e-6)
